//! Per-/24 classification: the Hobbit probing state machine
//! (paper Sections 2.3, 3.3–3.5, Table 1).
//!
//! Destinations are probed in round-robin /26 order; after each resolved
//! last-hop the grouping is re-tested. Probing terminates early when
//!
//! * a non-hierarchical relationship appears (homogeneous — load balancing
//!   is the only explanation), or
//! * six destinations have resolved to one common last-hop router
//!   (homogeneous at 95%, by the MDA single-interface rule), or
//! * the confidence table says enough destinations were probed for the
//!   observed cardinality.

use crate::confidence::ConfidenceTable;
use crate::hierarchy::Relationship;
use crate::layout::BlockTable;
use crate::schedule::{probing_order, reprobe_order};
use crate::select::SelectedBlock;
use netsim::{Addr, Block24};
use obs::{Counter, Histogram, Recorder};
use probe::{probe_lasthop_in_mode, LasthopOutcome, MdaLiteState, MdaMode, Prober, StoppingRule};
use serde::{Deserialize, Serialize};

/// Classification outcomes (the rows of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Classification {
    /// Not analyzable: fewer responsive addresses at probe time than the
    /// method requires (< 4, or fewer than the confidence table demands).
    TooFewActive,
    /// Not analyzable: destinations answer but no last-hop router does.
    UnresponsiveLasthop,
    /// Homogeneous: all destinations share one last-hop router.
    SameLasthop,
    /// Homogeneous: groups are non-hierarchical (load balancing).
    NonHierarchical,
    /// Different last-hop routers in a hierarchical arrangement — possibly
    /// heterogeneous (residual ≤ 1 − confidence level).
    Hierarchical,
}

impl Classification {
    /// Whether the block was classified homogeneous.
    pub fn is_homogeneous(self) -> bool {
        matches!(
            self,
            Classification::SameLasthop | Classification::NonHierarchical
        )
    }

    /// Whether the block could be analyzed at all.
    pub fn is_analyzable(self) -> bool {
        !matches!(
            self,
            Classification::TooFewActive | Classification::UnresponsiveLasthop
        )
    }

    /// Table 1 row label.
    pub fn label(self) -> &'static str {
        match self {
            Classification::TooFewActive => "Too few active",
            Classification::UnresponsiveLasthop => "Unresponsive last-hop",
            Classification::SameLasthop => "Same last-hop router",
            Classification::NonHierarchical => "Non-hierarchical",
            Classification::Hierarchical => "Different but hierarchical",
        }
    }

    /// Kebab-case slug used in metric names (`classify.verdict.<slug>`).
    pub fn slug(self) -> &'static str {
        match self {
            Classification::TooFewActive => "too-few-active",
            Classification::UnresponsiveLasthop => "unresponsive-lasthop",
            Classification::SameLasthop => "same-lasthop",
            Classification::NonHierarchical => "non-hierarchical",
            Classification::Hierarchical => "hierarchical",
        }
    }

    /// Every classification outcome, in declaration order.
    pub const ALL: [Classification; 5] = [
        Classification::TooFewActive,
        Classification::UnresponsiveLasthop,
        Classification::SameLasthop,
        Classification::NonHierarchical,
        Classification::Hierarchical,
    ];
}

/// Tunable parameters of the classifier.
#[derive(Clone, Copy, Debug)]
pub struct HobbitConfig {
    /// MDA stopping rule used by the last-hop prober.
    pub rule: StoppingRule,
    /// Minimum resolved destinations to call a single-group block
    /// "same last-hop" (paper: 6, from the MDA n(1) rule).
    pub same_lasthop_min: usize,
    /// Minimum responsive destinations for any verdict (paper: 4).
    pub min_active: usize,
    /// Seed for the probing order shuffle.
    pub seed: u64,
    /// Per-probe retries the worker's prober uses (raised when the network
    /// is lossy; 1 matches the historical prober default).
    pub prober_retries: u32,
    /// Lifetime retry budget handed to the worker's prober.
    pub retry_budget: u64,
    /// Targeted reprobe rounds over destinations that timed out, attempted
    /// when the first pass ends without a verdict. Each round revisits only
    /// the still-unresolved destinations, so a transiently lost answer
    /// degrades the measurement gracefully instead of silently shrinking a
    /// last-hop group. 0 disables reprobing.
    pub reprobe_rounds: usize,
    /// MDA stopping discipline: `Classic` runs the full ladder at every
    /// destination; `Lite` confirms a block's last-hop diamond once and
    /// lets later destinations stop early (escalating on inconsistent
    /// evidence). The per-block diamond state spans the reprobe rounds.
    pub mda_mode: MdaMode,
    /// Probes per virtual epoch when the world under measurement evolves
    /// (netsim dynamics). 0 — the default — means a static world: no epoch
    /// tagging, and measurements serialize byte-identically to historical
    /// records.
    pub dynamics_period: u64,
}

impl Default for HobbitConfig {
    fn default() -> Self {
        HobbitConfig {
            rule: StoppingRule::confidence95(),
            same_lasthop_min: 6,
            min_active: 4,
            seed: 0x40BB17,
            prober_retries: 1,
            retry_budget: probe::prober::DEFAULT_RETRY_BUDGET,
            reprobe_rounds: 1,
            mda_mode: MdaMode::Classic,
            dynamics_period: 0,
        }
    }
}

/// The measurement record for one /24.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BlockMeasurement {
    /// The measured block.
    pub block: Block24,
    /// Table 1 verdict.
    pub classification: Classification,
    /// Distinct last-hop routers observed (sorted) — the signature used by
    /// aggregation (Section 5).
    pub lasthop_set: Vec<Addr>,
    /// Per-destination observations: (destination, its last-hop routers).
    pub per_dest: Vec<(Addr, Vec<Addr>)>,
    /// Destinations probed (including unresponsive ones).
    pub dests_probed: usize,
    /// Destinations whose last-hop was resolved.
    pub dests_resolved: usize,
    /// Destinations that echoed but whose last-hop stayed anonymous.
    pub dests_anonymous: usize,
    /// Destinations probed that never answered (timed out even after any
    /// reprobe rounds) — the gracefully-degraded remainder.
    pub dests_unresolved: usize,
    /// Targeted reprobe attempts spent on initially unresolved destinations.
    pub reprobes: usize,
    /// Probe packets spent on this block.
    pub probes_used: u64,
    /// Virtual epoch each `per_dest` entry resolved in (parallel to
    /// `per_dest`, derived from the block prober's own probe count against
    /// [`HobbitConfig::dynamics_period`]). Empty — and omitted from the
    /// serialized record — for static worlds.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub dest_epochs: Vec<u32>,
}

impl BlockMeasurement {
    /// Rebuild the dense last-hop table from the stored observations.
    pub fn table(&self) -> BlockTable {
        let mut t = BlockTable::new(self.block);
        for (a, l) in &self.per_dest {
            t.add(*a, l);
        }
        t
    }
}

/// Pre-interned classification metrics: per-block outcome counters and
/// size histograms, bumped once per classified block. All of these are
/// deterministic across thread counts (classification itself is
/// byte-identical at any worker count), so they live outside the metrics
/// document's `timing` key.
#[derive(Clone, Debug)]
pub struct ClassifyObs {
    blocks: Counter,
    dests_probed: Counter,
    dests_resolved: Counter,
    dests_anonymous: Counter,
    dests_unresolved: Counter,
    reprobes: Counter,
    reprobe_passes: Counter,
    verdicts: [Counter; 5],
    probes_per_block: Histogram,
    dests_per_block: Histogram,
    routers_per_block: Histogram,
    dense_slots: Counter,
}

impl ClassifyObs {
    /// Intern the standard `classify.*` metrics in `rec`. All verdict
    /// counters are interned up front so the document schema does not
    /// depend on which outcomes a particular run happens to produce.
    pub fn bind(rec: &dyn Recorder) -> Self {
        ClassifyObs {
            blocks: rec.counter("classify.blocks"),
            dests_probed: rec.counter("classify.dests_probed"),
            dests_resolved: rec.counter("classify.dests_resolved"),
            dests_anonymous: rec.counter("classify.dests_anonymous"),
            dests_unresolved: rec.counter("classify.dests_unresolved"),
            reprobes: rec.counter("classify.reprobes"),
            reprobe_passes: rec.counter("classify.reprobe_passes"),
            verdicts: Classification::ALL
                .map(|c| rec.counter(&format!("classify.verdict.{}", c.slug()))),
            probes_per_block: rec.histogram("classify.probes_per_block"),
            dests_per_block: rec.histogram("classify.dests_per_block"),
            routers_per_block: rec.histogram("layout.routers_per_block"),
            dense_slots: rec.counter("layout.dense_slots"),
        }
    }

    /// Record one finished block measurement.
    pub fn record(&self, m: &BlockMeasurement) {
        self.blocks.inc();
        self.dests_probed.add(m.dests_probed as u64);
        self.dests_resolved.add(m.dests_resolved as u64);
        self.dests_anonymous.add(m.dests_anonymous as u64);
        self.dests_unresolved.add(m.dests_unresolved as u64);
        self.reprobes.add(m.reprobes as u64);
        if m.reprobes > 0 {
            self.reprobe_passes.inc();
        }
        let idx = Classification::ALL
            .iter()
            .position(|&c| c == m.classification)
            .expect("ALL covers every classification");
        self.verdicts[idx].inc();
        self.probes_per_block.record(m.probes_used);
        self.dests_per_block.record(m.dests_probed as u64);
        // Dense-layout occupancy: distinct routers in the block's router
        // table and host slots set in its observation bitset. Both derive
        // from measurement content, so they stay thread-count-deterministic.
        self.routers_per_block.record(m.lasthop_set.len() as u64);
        self.dense_slots.add(m.dests_resolved as u64);
    }
}

/// Re-test the grouping after a new resolution; `Some` means probing can
/// stop early with this verdict (paper §3.3's termination conditions).
///
/// `table` is the incrementally maintained dense grouping and `resolved`
/// the number of destinations with a resolved last-hop — the classifier
/// updates both per resolution instead of rebuilding a map each time.
pub fn early_verdict(
    table: &BlockTable,
    resolved: usize,
    conf: &ConfidenceTable,
    cfg: &HobbitConfig,
) -> Option<Classification> {
    match table.relationship() {
        Relationship::NonHierarchical => Some(Classification::NonHierarchical),
        Relationship::SingleGroup => {
            (resolved >= cfg.same_lasthop_min).then_some(Classification::SameLasthop)
        }
        // Without a table entry: probe all active addresses (paper §3.5).
        Relationship::Hierarchical => match conf.required_probes(table.cardinality()) {
            Some(required) if resolved >= required => Some(Classification::Hierarchical),
            _ => None,
        },
    }
}

/// Classify one selected /24 by probing.
pub fn classify_block(
    prober: &mut Prober<'_>,
    sel: &SelectedBlock,
    conf: &ConfidenceTable,
    cfg: &HobbitConfig,
) -> BlockMeasurement {
    prober.retries = cfg.prober_retries;
    prober.retry_budget = cfg.retry_budget;
    let probes_before = prober.probes_sent();
    let order = probing_order(sel, cfg.seed);
    let mut per_dest: Vec<(Addr, Vec<Addr>)> = Vec::new();
    // Epoch tags, parallel to `per_dest`: the block prober owns its probe
    // stream, so its own probe count against `dynamics_period` is exactly
    // the virtual clock the evolving world ticks on. Static worlds
    // (period 0) record nothing.
    let mut dest_epochs: Vec<u32> = Vec::new();
    let epoch_now = |prober: &Prober<'_>| {
        (prober.probes_sent() - probes_before)
            .checked_div(cfg.dynamics_period)
            .unwrap_or(0) as u32
    };
    // The dense grouping, maintained incrementally: each resolution appends
    // to the block-local router table and flips host bits, so the per-
    // resolution re-test never rebuilds a map from scratch.
    let mut table = BlockTable::new(sel.block);
    let mut anonymous = 0usize;
    let mut probed = 0usize;
    let mut unresolved: Vec<Addr> = Vec::new();
    let mut verdict: Option<Classification> = None;
    // Destinations of one /24 sit at the same hop distance; resolve it once
    // and seed the remaining destinations (saves the per-destination echo
    // inference round, cf. paper §3.4's efficiency goal).
    let mut dist_hint: Option<u8> = None;
    // One MDA-Lite diamond per block, shared across the first pass and the
    // reprobe rounds: every destination of a /24 sits behind the same fan.
    let mut lite_state = match cfg.mda_mode {
        MdaMode::Lite => Some(MdaLiteState::new()),
        MdaMode::Classic => None,
    };

    for dst in order {
        // Cooperative cancellation (supervision watchdog): abandon the
        // block between destinations. The partial measurement is discarded
        // by the supervisor, so breaking early never changes a verdict.
        if prober.is_cancelled() {
            break;
        }
        probed += 1;
        let r = probe_lasthop_in_mode(prober, dst, cfg.rule, dist_hint, lite_state.as_mut());
        match r.outcome {
            LasthopOutcome::Found {
                lasthops,
                dst_distance,
            } => {
                dist_hint = Some(dst_distance.saturating_sub(1).max(1));
                table.add(dst, &lasthops);
                if cfg.dynamics_period > 0 {
                    dest_epochs.push(epoch_now(prober));
                }
                per_dest.push((dst, lasthops));
            }
            LasthopOutcome::AnonymousLasthop { dst_distance } => {
                dist_hint = Some(dst_distance.saturating_sub(1).max(1));
                anonymous += 1;
                continue;
            }
            // A silent destination is not evidence about the block's
            // routing: mark it unresolved for the targeted reprobe pass
            // instead of letting it shrink a last-hop group.
            LasthopOutcome::Unresponsive => {
                unresolved.push(dst);
                continue;
            }
        }
        if let Some(v) = early_verdict(&table, per_dest.len(), conf, cfg) {
            verdict = Some(v);
            break;
        }
    }

    // Graceful degradation: probing ended without a verdict while some
    // destinations never answered — give exactly those another chance
    // (a lost answer may be churn or transient loss, not absence).
    let mut reprobes = 0usize;
    for _round in 0..cfg.reprobe_rounds {
        if verdict.is_some() || unresolved.is_empty() || prober.is_cancelled() {
            break;
        }
        let mut still: Vec<Addr> = Vec::new();
        for dst in reprobe_order(sel.block, &unresolved, cfg.seed) {
            if prober.is_cancelled() {
                break;
            }
            reprobes += 1;
            let r = probe_lasthop_in_mode(prober, dst, cfg.rule, dist_hint, lite_state.as_mut());
            match r.outcome {
                LasthopOutcome::Found {
                    lasthops,
                    dst_distance,
                } => {
                    dist_hint = Some(dst_distance.saturating_sub(1).max(1));
                    table.add(dst, &lasthops);
                    if cfg.dynamics_period > 0 {
                        dest_epochs.push(epoch_now(prober));
                    }
                    per_dest.push((dst, lasthops));
                    if let Some(v) = early_verdict(&table, per_dest.len(), conf, cfg) {
                        verdict = Some(v);
                        break;
                    }
                }
                LasthopOutcome::AnonymousLasthop { dst_distance } => {
                    dist_hint = Some(dst_distance.saturating_sub(1).max(1));
                    anonymous += 1;
                }
                LasthopOutcome::Unresponsive => still.push(dst),
            }
        }
        unresolved = still;
    }

    let classification = verdict.unwrap_or_else(|| {
        // Probing exhausted the active list without an early verdict.
        if per_dest.len() < cfg.min_active {
            if anonymous >= cfg.min_active {
                Classification::UnresponsiveLasthop
            } else {
                Classification::TooFewActive
            }
        } else {
            match table.relationship() {
                Relationship::NonHierarchical => Classification::NonHierarchical,
                Relationship::SingleGroup => {
                    if per_dest.len() >= cfg.same_lasthop_min {
                        Classification::SameLasthop
                    } else {
                        Classification::TooFewActive
                    }
                }
                Relationship::Hierarchical => {
                    match conf.required_probes(table.cardinality()) {
                        // The confidence table says we'd have needed more
                        // destinations than this block could offer.
                        Some(required) if per_dest.len() < required => Classification::TooFewActive,
                        _ => Classification::Hierarchical,
                    }
                }
            }
        }
    });

    if let Some(state) = &lite_state {
        prober.note_mda_lite(
            state.probes_saved,
            state.diamonds_detected,
            state.escalations,
        );
    }

    let lasthop_set = table.lasthop_set();

    BlockMeasurement {
        block: sel.block,
        classification,
        lasthop_set,
        dests_resolved: per_dest.len(),
        dests_anonymous: anonymous,
        dests_unresolved: probed - per_dest.len() - anonymous,
        reprobes,
        per_dest,
        dests_probed: probed,
        probes_used: prober.probes_sent() - probes_before,
        dest_epochs,
    }
}

/// [`classify_block`], reporting the finished measurement through `obs`
/// (bind once per worker with [`ClassifyObs::bind`]).
pub fn classify_block_observed(
    prober: &mut Prober<'_>,
    sel: &SelectedBlock,
    conf: &ConfidenceTable,
    cfg: &HobbitConfig,
    obs: &ClassifyObs,
) -> BlockMeasurement {
    let m = classify_block(prober, sel, conf, cfg);
    obs.record(&m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::select_block;
    use netsim::build::{build, ScenarioConfig};
    use probe::zmap;

    #[test]
    fn static_measurements_serialize_without_epoch_tags() {
        // The dest_epochs field must vanish from static-world records so
        // historical reports stay byte-identical.
        let m = BlockMeasurement {
            block: Block24(0x0C_0000),
            classification: Classification::TooFewActive,
            lasthop_set: vec![],
            per_dest: vec![],
            dests_probed: 1,
            dests_resolved: 0,
            dests_anonymous: 0,
            dests_unresolved: 1,
            reprobes: 0,
            probes_used: 3,
            dest_epochs: vec![],
        };
        let json = serde_json::to_string(&m).unwrap();
        assert!(!json.contains("dest_epochs"), "{json}");
        let back: BlockMeasurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
        // Tagged records carry — and round-trip — their epochs.
        let tagged = BlockMeasurement {
            dest_epochs: vec![0, 0, 1],
            ..m
        };
        let json = serde_json::to_string(&tagged).unwrap();
        assert!(json.contains("dest_epochs"));
        let back: BlockMeasurement = serde_json::from_str(&json).unwrap();
        assert_eq!(back.dest_epochs, vec![0, 0, 1]);
    }

    struct World {
        scenario: netsim::Scenario,
        snapshot: probe::ZmapSnapshot,
    }

    impl World {
        fn new(seed: u64) -> Self {
            let mut scenario = build(ScenarioConfig::tiny(seed));
            let snapshot = zmap::scan_all(&mut scenario.network);
            World { scenario, snapshot }
        }

        fn classify(&mut self, block: Block24) -> Option<BlockMeasurement> {
            let sel = select_block(&self.snapshot, block).ok()?;
            let mut prober = Prober::new(&mut self.scenario.network, 0x0B17);
            Some(classify_block(
                &mut prober,
                &sel,
                &ConfidenceTable::empty(),
                &HobbitConfig::default(),
            ))
        }
    }

    #[test]
    fn homogeneous_blocks_mostly_classified_homogeneous() {
        let mut w = World::new(42);
        let blocks: Vec<Block24> = w
            .snapshot
            .blocks()
            .filter(|b| {
                let t = &w.scenario.truth.blocks[b];
                t.homogeneous && w.scenario.truth.pops[t.pop as usize].responsive
            })
            .collect();
        let mut homog = 0;
        let mut total = 0;
        for b in blocks {
            if let Some(m) = w.classify(b) {
                if m.classification.is_analyzable() {
                    total += 1;
                    if m.classification.is_homogeneous() {
                        homog += 1;
                    }
                }
            }
        }
        assert!(total >= 10, "need analyzable blocks, got {total}");
        let frac = homog as f64 / total as f64;
        assert!(frac > 0.75, "only {homog}/{total} homogeneous");
    }

    #[test]
    fn heterogeneous_blocks_classified_hierarchical() {
        let mut w = World::new(42);
        let blocks: Vec<Block24> = w
            .snapshot
            .blocks()
            .filter(|b| !w.scenario.truth.blocks[b].homogeneous)
            .collect();
        let mut hier = 0;
        let mut analyzable = 0;
        for b in blocks {
            if let Some(m) = w.classify(b) {
                if m.classification.is_analyzable() {
                    analyzable += 1;
                    if m.classification == Classification::Hierarchical {
                        hier += 1;
                    }
                }
            }
        }
        if analyzable > 0 {
            assert!(
                hier as f64 / analyzable as f64 > 0.6,
                "{hier}/{analyzable} hierarchical"
            );
        }
    }

    #[test]
    fn unresponsive_pop_blocks_flagged() {
        let mut w = World::new(42);
        let blocks: Vec<Block24> = w
            .snapshot
            .blocks()
            .filter(|b| {
                let t = &w.scenario.truth.blocks[b];
                t.homogeneous && !w.scenario.truth.pops[t.pop as usize].responsive
            })
            .collect();
        let mut unresp = 0;
        let mut total = 0;
        for b in blocks {
            if let Some(m) = w.classify(b) {
                total += 1;
                if m.classification == Classification::UnresponsiveLasthop {
                    unresp += 1;
                }
            }
        }
        if total > 0 {
            assert!(
                unresp as f64 / total as f64 > 0.6,
                "{unresp}/{total} flagged unresponsive-lasthop"
            );
        }
    }

    #[test]
    fn same_lasthop_early_exit_costs_six_destinations() {
        let mut w = World::new(42);
        // Find a single-LH pop block with plenty of actives.
        let block = w.snapshot.blocks().find(|b| {
            let t = &w.scenario.truth.blocks[b];
            t.homogeneous
                && w.scenario.truth.pops[t.pop as usize].responsive
                && w.scenario.truth.pops[t.pop as usize].lasthop_addrs.len() == 1
                && w.snapshot.active_in(*b).len() >= 12
        });
        let Some(block) = block else { return };
        let m = w.classify(block).unwrap();
        assert_eq!(m.classification, Classification::SameLasthop);
        assert!(
            m.dests_probed <= 10,
            "early exit should stop near 6 destinations, probed {}",
            m.dests_probed
        );
    }

    #[test]
    fn measurement_records_are_consistent() {
        let mut w = World::new(42);
        let block = w.snapshot.blocks().next().unwrap();
        if let Some(m) = w.classify(block) {
            assert!(m.dests_resolved <= m.dests_probed);
            assert_eq!(m.dests_resolved, m.per_dest.len());
            assert_eq!(
                m.dests_probed,
                m.dests_resolved + m.dests_anonymous + m.dests_unresolved,
                "every probed destination is resolved, anonymous, or unresolved"
            );
            let set: std::collections::BTreeSet<Addr> = m
                .per_dest
                .iter()
                .flat_map(|(_, l)| l.iter().copied())
                .collect();
            assert_eq!(m.lasthop_set, set.into_iter().collect::<Vec<_>>());
            assert!(m.probes_used > 0);
        }
    }

    /// Classify every snapshot block fault-free under the given MDA mode.
    fn classify_with_mode(seed: u64, mode: MdaMode) -> Vec<BlockMeasurement> {
        let mut w = World::new(seed);
        let cfg = HobbitConfig {
            mda_mode: mode,
            ..HobbitConfig::default()
        };
        let blocks: Vec<Block24> = w.snapshot.blocks().collect();
        let mut out = Vec::new();
        for b in blocks {
            let Ok(sel) = select_block(&w.snapshot, b) else {
                continue;
            };
            let mut prober = Prober::new(&mut w.scenario.network, 0x0B17);
            out.push(classify_block(
                &mut prober,
                &sel,
                &ConfidenceTable::empty(),
                &cfg,
            ));
        }
        out
    }

    #[test]
    fn mda_lite_cuts_probe_cost_without_changing_verdicts() {
        let classic = classify_with_mode(42, MdaMode::Classic);
        let lite = classify_with_mode(42, MdaMode::Lite);
        assert_eq!(classic.len(), lite.len());
        let mut drift = 0usize;
        for (c, l) in classic.iter().zip(&lite) {
            assert_eq!(c.block, l.block);
            if c.classification != l.classification {
                drift += 1;
            }
            assert!(
                l.probes_used <= c.probes_used,
                "block {:?}: lite {} > classic {}",
                c.block,
                l.probes_used,
                c.probes_used
            );
        }
        assert!(
            drift * 100 <= classic.len(),
            "verdict drift {drift}/{} exceeds 1%",
            classic.len()
        );
        let cp: u64 = classic.iter().map(|m| m.probes_used).sum();
        let lp: u64 = lite.iter().map(|m| m.probes_used).sum();
        assert!(lp < cp, "lite must be cheaper overall: {lp} vs {cp}");
    }

    /// Classify every snapshot block on a faulted network with the given
    /// config, returning the measurements.
    fn classify_all_with(
        seed: u64,
        faults: netsim::FaultConfig,
        cfg: &HobbitConfig,
    ) -> Vec<BlockMeasurement> {
        let mut w = World::new(seed);
        w.scenario.network.set_faults(faults);
        let blocks: Vec<Block24> = w.snapshot.blocks().collect();
        let mut out = Vec::new();
        for b in blocks {
            let Ok(sel) = select_block(&w.snapshot, b) else {
                continue;
            };
            let mut prober = Prober::new(&mut w.scenario.network, 0x0B17);
            out.push(classify_block(
                &mut prober,
                &sel,
                &ConfidenceTable::empty(),
                cfg,
            ));
        }
        out
    }

    #[test]
    fn lossy_network_triggers_targeted_reprobes() {
        // Heavy link loss and no per-probe retries: first-pass timeouts are
        // common, so the reprobe pass must engage — and win some answers
        // back (each reprobe is a fresh draw against the loss process).
        let cfg = HobbitConfig {
            prober_retries: 0,
            reprobe_rounds: 2,
            ..HobbitConfig::default()
        };
        let ms = classify_all_with(42, netsim::FaultConfig::lossy(0.10, 0.5), &cfg);
        let reprobes: usize = ms.iter().map(|m| m.reprobes).sum();
        assert!(reprobes > 0, "loss must leave unresolved dests to reprobe");
        for m in &ms {
            assert_eq!(
                m.dests_probed,
                m.dests_resolved + m.dests_anonymous + m.dests_unresolved
            );
        }
    }

    #[test]
    fn zero_reprobe_rounds_disable_the_second_pass() {
        let cfg = HobbitConfig {
            prober_retries: 0,
            reprobe_rounds: 0,
            ..HobbitConfig::default()
        };
        let ms = classify_all_with(42, netsim::FaultConfig::lossy(0.10, 0.5), &cfg);
        assert!(ms.iter().all(|m| m.reprobes == 0));
    }

    #[test]
    fn reprobing_recovers_unresolved_destinations() {
        let base = HobbitConfig {
            prober_retries: 0,
            reprobe_rounds: 0,
            ..HobbitConfig::default()
        };
        let with_reprobe = HobbitConfig {
            reprobe_rounds: 2,
            ..base
        };
        let faults = netsim::FaultConfig::lossy(0.10, 0.5);
        let without: usize = classify_all_with(42, faults, &base)
            .iter()
            .map(|m| m.dests_unresolved)
            .sum();
        let with: usize = classify_all_with(42, faults, &with_reprobe)
            .iter()
            .map(|m| m.dests_unresolved)
            .sum();
        assert!(
            with < without,
            "reprobing should resolve some lost destinations ({with} vs {without})"
        );
    }
}
