//! Destination selection (paper Section 3.3).
//!
//! Hobbit needs at least 4 active addresses per /24 (fewer can never be
//! non-hierarchical), and requires every /26 quarter of the /24 to contain
//! at least one active address so that the verdict represents the whole
//! /24 rather than a /25 or /26. Both criteria are evaluated against the
//! ZMap snapshot; actual availability at probe time may differ.

use netsim::{Addr, Block24};
use probe::ZmapSnapshot;
use serde::{Deserialize, Serialize};

/// A /24 selected for measurement, with its snapshot-active addresses
/// grouped by /26 quarter.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SelectedBlock {
    /// The /24 block.
    pub block: Block24,
    /// Snapshot-active addresses per /26 quarter (each non-empty).
    pub quarters: [Vec<Addr>; 4],
}

impl SelectedBlock {
    /// Total snapshot-active addresses.
    pub fn active_count(&self) -> usize {
        self.quarters.iter().map(Vec::len).sum()
    }

    /// All snapshot-active addresses in ascending order.
    pub fn actives(&self) -> Vec<Addr> {
        let mut v: Vec<Addr> = self.quarters.iter().flatten().copied().collect();
        v.sort();
        v
    }
}

/// Why a block was rejected by selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectReject {
    /// Fewer than 4 snapshot-active addresses.
    TooFewActive,
    /// Some /26 quarter has no snapshot-active address.
    UncoveredQuarter,
}

/// Apply the Section 3.3 criteria to one block.
pub fn select_block(
    snapshot: &ZmapSnapshot,
    block: Block24,
) -> Result<SelectedBlock, SelectReject> {
    let actives = snapshot.active_in(block);
    if actives.len() < 4 {
        return Err(SelectReject::TooFewActive);
    }
    let mut quarters: [Vec<Addr>; 4] = Default::default();
    for &a in actives {
        quarters[a.quarter26() as usize].push(a);
    }
    if quarters.iter().any(|q| q.is_empty()) {
        return Err(SelectReject::UncoveredQuarter);
    }
    Ok(SelectedBlock { block, quarters })
}

/// Select all qualifying blocks from a snapshot, in numeric order.
pub fn select_all(snapshot: &ZmapSnapshot) -> Vec<SelectedBlock> {
    snapshot
        .blocks()
        .filter_map(|b| select_block(snapshot, b).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snapshot_with(block: Block24, hosts: &[u8]) -> ZmapSnapshot {
        let mut active = BTreeMap::new();
        active.insert(block, hosts.iter().map(|&h| block.addr(h)).collect());
        ZmapSnapshot {
            active,
            epoch: 0,
            probes: 0,
        }
    }

    const B: Block24 = Block24(0x0A_0102);

    #[test]
    fn accepts_one_active_per_quarter() {
        let snap = snapshot_with(B, &[1, 70, 130, 200]);
        let sel = select_block(&snap, B).unwrap();
        assert_eq!(sel.active_count(), 4);
        assert_eq!(
            sel.quarters.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![1, 1, 1, 1]
        );
    }

    #[test]
    fn rejects_too_few() {
        let snap = snapshot_with(B, &[1, 70, 130]);
        assert_eq!(
            select_block(&snap, B).unwrap_err(),
            SelectReject::TooFewActive
        );
    }

    #[test]
    fn rejects_uncovered_quarter() {
        // Four actives but all in quarters 0-2; quarter 3 empty.
        let snap = snapshot_with(B, &[1, 2, 70, 130]);
        assert_eq!(
            select_block(&snap, B).unwrap_err(),
            SelectReject::UncoveredQuarter
        );
    }

    #[test]
    fn rejects_unknown_block() {
        let snap = snapshot_with(B, &[1, 70, 130, 200]);
        assert_eq!(
            select_block(&snap, Block24(0x0B_0000)).unwrap_err(),
            SelectReject::TooFewActive
        );
    }

    #[test]
    fn actives_are_sorted() {
        let snap = snapshot_with(B, &[200, 1, 130, 70]);
        let sel = select_block(&snap, B).unwrap();
        let a = sel.actives();
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn select_all_filters() {
        let mut snap = snapshot_with(B, &[1, 70, 130, 200]);
        let b2 = Block24(0x0A_0103);
        snap.active.insert(b2, vec![b2.addr(1), b2.addr(2)]);
        let sel = select_all(&snap);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].block, B);
    }
}
