//! Probing order (paper Section 3.3): destinations are drawn round-robin
//! across the four /26 quarters, and the quarter order is reshuffled at the
//! end of each round, so early terminations still represent the whole /24.

use crate::select::SelectedBlock;
use netsim::{Addr, Block24};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Produce the full probing order for a selected block.
///
/// Within each quarter the addresses are visited in a seeded shuffle; the
/// round-robin quarter order reshuffles between rounds. Every active
/// address appears exactly once.
pub fn probing_order(sel: &SelectedBlock, seed: u64) -> Vec<Addr> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (sel.block.0 as u64) << 8);
    // Per-quarter queues, shuffled once.
    let mut queues: Vec<Vec<Addr>> = sel
        .quarters
        .iter()
        .map(|q| {
            let mut v = q.clone();
            v.shuffle(&mut rng);
            v
        })
        .collect();
    let mut order = Vec::with_capacity(sel.active_count());
    let mut quarter_order: Vec<usize> = (0..4).collect();
    while queues.iter().any(|q| !q.is_empty()) {
        quarter_order.shuffle(&mut rng);
        for &q in &quarter_order {
            if let Some(a) = queues[q].pop() {
                order.push(a);
            }
        }
    }
    order
}

/// Order a targeted reprobe round over destinations that stayed unresolved.
///
/// Input order is irrelevant (the list is sorted before shuffling), so the
/// schedule depends only on the block, the seed, and the *set* of
/// unresolved addresses — a worker that collected them in any order
/// reprobes them identically.
pub fn reprobe_order(block: Block24, unresolved: &[Addr], seed: u64) -> Vec<Addr> {
    let mut order: Vec<Addr> = unresolved.to_vec();
    order.sort();
    order.dedup();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((block.0 as u64) << 8) ^ 0x5EC0);
    order.shuffle(&mut rng);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(hosts_per_quarter: [&[u8]; 4]) -> SelectedBlock {
        let block = Block24(0x0A_0102);
        let quarters = hosts_per_quarter.map(|hs| hs.iter().map(|&h| block.addr(h)).collect());
        SelectedBlock { block, quarters }
    }

    #[test]
    fn order_visits_every_address_once() {
        let s = sel([&[1, 2, 3], &[70, 71], &[130], &[200, 201, 202, 203]]);
        let order = probing_order(&s, 9);
        assert_eq!(order.len(), 10);
        let mut sorted = order.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn first_round_covers_all_quarters() {
        let s = sel([&[1, 2], &[70, 71], &[130, 131], &[200, 201]]);
        let order = probing_order(&s, 9);
        let quarters: std::collections::HashSet<u8> =
            order[..4].iter().map(|a| a.quarter26()).collect();
        assert_eq!(quarters.len(), 4, "first four probes hit all quarters");
    }

    #[test]
    fn deterministic_per_seed_and_block() {
        let s = sel([&[1, 2], &[70], &[130], &[200, 201]]);
        assert_eq!(probing_order(&s, 9), probing_order(&s, 9));
        assert_ne!(probing_order(&s, 9), probing_order(&s, 10));
    }

    #[test]
    fn reprobe_order_is_a_permutation_independent_of_input_order() {
        let block = Block24(0x0A_0102);
        let fwd: Vec<Addr> = [1u8, 9, 40, 77, 130, 200]
            .iter()
            .map(|&h| block.addr(h))
            .collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let a = reprobe_order(block, &fwd, 7);
        let b = reprobe_order(block, &rev, 7);
        assert_eq!(a, b, "schedule depends on the set, not collection order");
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, fwd);
        assert_ne!(reprobe_order(block, &fwd, 7), reprobe_order(block, &fwd, 8));
    }

    #[test]
    fn uneven_quarters_drain_gracefully() {
        let s = sel([&[1], &[70], &[130], &[200, 201, 202, 203, 204]]);
        let order = probing_order(&s, 3);
        assert_eq!(order.len(), 8);
        // Tail should be all quarter-3 addresses once others drain.
        assert!(order[4..].iter().all(|a| a.quarter26() == 3));
    }
}
