//! The empirical confidence table (paper Section 3.2, Figure 4).
//!
//! Hobbit can miss homogeneity when load-balancer hashing happens to
//! produce a hierarchical-looking grouping; the probability depends on the
//! block's cardinality and how many destinations were probed. The paper
//! estimates `P(detect | cardinality, #probed)` empirically: for /24s known
//! to be homogeneous (with full per-address data), it samples destination
//! subsets, replays Hobbit on each subset, and tabulates success rates.
//! The table then drives termination: probe until the success probability
//! at the observed cardinality reaches the confidence level.

use crate::hierarchy::Relationship;
use crate::layout::BlockTable;
use netsim::Addr;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Full last-hop data for one block, the input to table construction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockLasthopData {
    /// Per-address observed last-hop sets (every responsive address).
    pub per_addr: Vec<(Addr, Vec<Addr>)>,
}

impl BlockLasthopData {
    /// Distinct last-hop routers across all addresses.
    pub fn cardinality(&self) -> usize {
        let mut v: Vec<Addr> = self
            .per_addr
            .iter()
            .flat_map(|(_, l)| l.iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v.len()
    }
}

/// Would Hobbit, given exactly these observations, recognize the block as
/// homogeneous? (Common last-hop or a non-hierarchical grouping.)
pub fn detects_homogeneous(per_addr: &[(Addr, Vec<Addr>)]) -> bool {
    let table = BlockTable::from_observations(per_addr.iter().map(|(a, l)| (*a, l.as_slice())));
    matches!(
        table.relationship(),
        Relationship::SingleGroup | Relationship::NonHierarchical
    )
}

/// The `<cardinality, #probed> → confidence` table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConfidenceTable {
    /// (cardinality, probed) → (successes, samples).
    cells: BTreeMap<(usize, usize), (u64, u64)>,
    /// Required confidence level (paper: 0.95).
    pub level: f64,
    /// Minimum samples before a cell is trusted.
    pub min_samples: u64,
}

impl ConfidenceTable {
    /// An empty table: every lookup misses, so classification probes all
    /// active addresses (the paper's fallback).
    pub fn empty() -> Self {
        ConfidenceTable {
            cells: BTreeMap::new(),
            level: 0.95,
            min_samples: 1,
        }
    }

    /// Build the table from homogeneous blocks with full last-hop data.
    ///
    /// For each block and subset size `n`, draws up to `samples_per_combo`
    /// random n-subsets of the block's addresses and replays the detection.
    /// (The paper draws enough samples for a 1% margin at 99% confidence —
    /// 16,588 per cell; pass that as `samples_per_combo * blocks` scale or a
    /// smaller number for quick runs.)
    ///
    /// `min_samples` is the trust threshold lookups enforce: cells with
    /// fewer samples answer `None`. It used to be hard-coded to 8 here
    /// while [`ConfidenceTable::empty`] used 1 — callers tuning
    /// `samples_per_combo` below 8 silently got a table that never
    /// answered.
    pub fn build(
        dataset: &[BlockLasthopData],
        max_probed: usize,
        samples_per_combo: usize,
        level: f64,
        min_samples: u64,
        seed: u64,
    ) -> Self {
        let mut cells: BTreeMap<(usize, usize), (u64, u64)> = BTreeMap::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for block in dataset {
            let c = block.cardinality();
            if c == 0 {
                continue;
            }
            let n_addrs = block.per_addr.len();
            let mut indices: Vec<usize> = (0..n_addrs).collect();
            for n in 4..=n_addrs.min(max_probed) {
                for _ in 0..samples_per_combo {
                    indices.shuffle(&mut rng);
                    let subset: Vec<(Addr, Vec<Addr>)> = indices[..n]
                        .iter()
                        .map(|&i| block.per_addr[i].clone())
                        .collect();
                    let cell = cells.entry((c, n)).or_insert((0, 0));
                    cell.1 += 1;
                    if detects_homogeneous(&subset) {
                        cell.0 += 1;
                    }
                }
            }
        }
        ConfidenceTable {
            cells,
            level,
            min_samples,
        }
    }

    /// The success probability for a `<cardinality, probed>` pair, if the
    /// cell has enough samples.
    pub fn confidence(&self, cardinality: usize, probed: usize) -> Option<f64> {
        let &(succ, total) = self.cells.get(&(cardinality, probed))?;
        if total < self.min_samples {
            return None;
        }
        Some(succ as f64 / total as f64)
    }

    /// The smallest number of probed destinations reaching the confidence
    /// level at this cardinality, or `None` if the table has no qualifying
    /// cell (then Hobbit probes every active address).
    pub fn required_probes(&self, cardinality: usize) -> Option<usize> {
        self.cells
            .range((cardinality, 0)..(cardinality + 1, 0))
            .filter(|(_, &(_, total))| total >= self.min_samples)
            .find(|(&(_, n), &(succ, total))| {
                let conf = succ as f64 / total as f64;
                conf >= self.level && n >= 4
            })
            .map(|(&(_, n), _)| n)
    }

    /// All populated cells as `(cardinality, probed, confidence)` rows —
    /// the data behind Figure 4.
    pub fn rows(&self) -> Vec<(usize, usize, f64)> {
        self.cells
            .iter()
            .filter(|(_, &(_, t))| t >= self.min_samples)
            .map(|(&(c, n), &(s, t))| (c, n, s as f64 / t as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lh(n: u32) -> Addr {
        Addr(0x0A00_0000 + n)
    }

    fn d(h: u8) -> Addr {
        Addr::new(192, 0, 2, h)
    }

    /// A homogeneous block whose addresses cycle across `k` last-hop
    /// routers (per-destination hashing). The full grouping interleaves, so
    /// full data detects, while small subsets can look hierarchical by
    /// chance — the miss probability Figure 4 characterizes. Detection
    /// confidence converges to 1 for k ≥ 3 but plateaus near 0.5 for k = 2
    /// (two random subsets nest with probability ~1/2).
    fn interleaved_block(n: usize, k: u32) -> BlockLasthopData {
        assert!(
            n.is_multiple_of(k as usize),
            "balanced groups keep extremes spread"
        );
        BlockLasthopData {
            per_addr: (0..n)
                .map(|i| {
                    let host = (i + 1) as u8;
                    (d(host), vec![lh(1 + (i as u32 % k))])
                })
                .collect(),
        }
    }

    /// A single-lasthop block.
    fn single_block(n: usize) -> BlockLasthopData {
        BlockLasthopData {
            per_addr: (1..=n).map(|i| (d(i as u8), vec![lh(1)])).collect(),
        }
    }

    #[test]
    fn cardinality_counts_distinct_lasthops() {
        assert_eq!(interleaved_block(20, 2).cardinality(), 2);
        assert_eq!(single_block(10).cardinality(), 1);
    }

    #[test]
    fn detection_on_full_data_succeeds() {
        assert!(detects_homogeneous(&interleaved_block(30, 2).per_addr));
        assert!(detects_homogeneous(&interleaved_block(30, 3).per_addr));
        assert!(detects_homogeneous(&single_block(10).per_addr));
    }

    #[test]
    fn confidence_increases_with_probes() {
        let data = vec![interleaved_block(60, 4)];
        let table = ConfidenceTable::build(&data, 32, 150, 0.95, 8, 7);
        let low = table.confidence(4, 5).expect("cell populated");
        let high = table.confidence(4, 24).expect("cell populated");
        assert!(high > low, "conf(24)={high} ≤ conf(5)={low}");
        assert!(high > 0.9, "with 24 of 60 addresses detection is near-sure");
    }

    #[test]
    fn required_probes_exists_for_cardinality_4() {
        let data = vec![interleaved_block(60, 4)];
        let table = ConfidenceTable::build(&data, 32, 150, 0.95, 8, 7);
        let req = table.required_probes(4).expect("reachable confidence");
        assert!((8..=32).contains(&req), "required {req}");
    }

    #[test]
    fn cardinality_2_confidence_plateaus_below_95() {
        // Two random per-destination groups nest with probability ~1/2, so
        // no number of probes reaches 95% — Hobbit must probe every active
        // address and accept the residual (these blocks feed the
        // "different but hierarchical" row of Table 1).
        let data = vec![interleaved_block(40, 2)];
        let table = ConfidenceTable::build(&data, 36, 150, 0.95, 8, 7);
        assert!(table.required_probes(2).is_none());
        let mid = table.confidence(2, 20).expect("cell populated");
        assert!((0.3..0.8).contains(&mid), "k=2 plateau, got {mid}");
    }

    #[test]
    fn empty_table_misses_everything() {
        let t = ConfidenceTable::empty();
        assert!(t.confidence(2, 10).is_none());
        assert!(t.required_probes(2).is_none());
        assert!(t.rows().is_empty());
    }

    #[test]
    fn single_lasthop_blocks_always_detect() {
        let data = vec![single_block(30)];
        let table = ConfidenceTable::build(&data, 16, 100, 0.95, 8, 7);
        for n in 4..=16 {
            assert_eq!(table.confidence(1, n), Some(1.0), "n={n}");
        }
        assert_eq!(table.required_probes(1), Some(4));
    }

    #[test]
    fn min_samples_is_honored_not_hardcoded() {
        // Regression: build() used to pin min_samples at 8 regardless of
        // how few samples the caller asked for, so quick tables (fewer
        // than 8 samples per cell) never answered a single lookup.
        let data = vec![single_block(20)];
        let sparse = ConfidenceTable::build(&data, 8, 4, 0.95, 8, 7);
        assert!(sparse.confidence(1, 4).is_none(), "4 < 8 samples: distrust");
        let trusted = ConfidenceTable::build(&data, 8, 4, 0.95, 4, 7);
        assert_eq!(trusted.min_samples, 4);
        assert_eq!(trusted.confidence(1, 4), Some(1.0));
        assert_eq!(trusted.required_probes(1), Some(4));
    }

    #[test]
    fn min_samples_zero_trusts_even_empty_cells_vacuously() {
        // min_samples = 0 means every *populated* cell answers; lookups
        // outside the sampled range still miss (there is no cell at all),
        // so the degenerate threshold cannot fabricate confidence.
        let data = vec![single_block(20)];
        let t = ConfidenceTable::build(&data, 8, 1, 0.95, 0, 7);
        assert_eq!(t.min_samples, 0);
        assert_eq!(t.confidence(1, 4), Some(1.0), "one sample is enough at 0");
        assert!(
            t.confidence(1, 100).is_none(),
            "unsampled cell still misses"
        );
        assert!(t.confidence(9, 4).is_none(), "unknown cardinality misses");
    }

    #[test]
    fn min_samples_one_accepts_single_sample_cells() {
        let data = vec![single_block(20)];
        let t = ConfidenceTable::build(&data, 8, 1, 0.95, 1, 7);
        for n in 4..=8 {
            assert_eq!(t.confidence(1, n), Some(1.0), "n={n}");
        }
        assert_eq!(t.required_probes(1), Some(4));
        // The same cells under a stricter threshold all distrust.
        let strict = ConfidenceTable::build(&data, 8, 1, 0.95, 2, 7);
        assert!(strict.confidence(1, 4).is_none());
        assert!(strict.required_probes(1).is_none());
    }

    #[test]
    fn required_probes_monotone_as_level_tightens() {
        // Tightening the confidence target can only demand more (or equally
        // many) probed destinations: required_probes is the first n whose
        // empirical confidence clears the level, and the cells themselves
        // do not depend on the level.
        let data = vec![interleaved_block(60, 4)];
        let levels = [0.50, 0.80, 0.90, 0.95];
        let required: Vec<usize> = levels
            .iter()
            .map(|&lvl| {
                ConfidenceTable::build(&data, 32, 150, lvl, 8, 7)
                    .required_probes(4)
                    .unwrap_or_else(|| panic!("level {lvl} unreachable"))
            })
            .collect();
        for pair in required.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "required probes must not shrink as the level tightens: {required:?}"
            );
        }
        assert!(
            required[0] < required[3],
            "0.50 vs 0.95 should genuinely differ on k=4 interleaving: {required:?}"
        );
    }

    #[test]
    fn table_is_deterministic_per_seed() {
        let data = vec![interleaved_block(30, 3)];
        let a = ConfidenceTable::build(&data, 12, 50, 0.95, 8, 1);
        let b = ConfidenceTable::build(&data, 12, 50, 0.95, 8, 1);
        assert_eq!(a.rows(), b.rows());
    }
}
