//! # hobbit — homogeneous /24 block identification
//!
//! The primary contribution of *Identifying and Aggregating Homogeneous
//! IPv4 /24 Blocks with Hobbit* (Lee & Spring, IMC 2016), reimplemented
//! over the [`netsim`] substrate and the [`probe`] measurement tools.
//!
//! Hobbit decides whether all addresses of a /24 are topologically
//! co-located despite per-destination load balancing changing even their
//! last-hop routers. The pipeline:
//!
//! 1. [`select`]: choose /24s from a ZMap snapshot (≥ 4 active addresses,
//!    one per /26 quarter);
//! 2. [`schedule`]: probe destinations round-robin across /26 quarters;
//! 3. [`layout`] + [`hierarchy`]: group destinations by last-hop router in
//!    a dense per-/24 table (256-bit member bitsets, block-local router
//!    ids) and test whether the groups' numeric ranges are hierarchical —
//!    non-hierarchical grouping proves load balancing, hence homogeneity;
//! 4. [`confidence`]: an empirical `<cardinality, #probed>` table bounds
//!    the miss probability and drives termination (Figure 4);
//! 5. [`classify`]: the per-block state machine producing Table 1 verdicts;
//! 6. [`hetero`]: the disjoint-and-aligned criterion exposing true splits
//!    and their sub-block compositions (Table 2);
//! 7. [`survey`]: full-block datasets for the metric comparison and the
//!    topology-discovery experiments.

#![warn(missing_docs)]

pub mod classify;
pub mod confidence;
pub mod hetero;
pub mod hierarchy;
pub mod layout;
pub mod schedule;
pub mod select;
pub mod survey;

pub use classify::{
    classify_block, classify_block_observed, early_verdict, BlockMeasurement, Classification,
    ClassifyObs, HobbitConfig,
};
pub use confidence::{detects_homogeneous, BlockLasthopData, ConfidenceTable};
pub use hetero::{very_likely_heterogeneous, SubBlockComposition};
pub use hierarchy::Relationship;
pub use layout::{intersect_count_sorted, BlockTable, HostSet, RouterInterner};
pub use probe::types::Hop;
pub use schedule::{probing_order, reprobe_order};
pub use select::{select_all, select_block, SelectReject, SelectedBlock};
pub use survey::{survey_block, BlockSurvey};
