//! Edge cases of selection, scheduling, and classification: empty and
//! near-empty /24s, hand-degenerate selections, and reprobe exhaustion
//! when the network drops everything.

use hobbit::{
    classify_block, probing_order, reprobe_order, select_block, Classification, ConfidenceTable,
    HobbitConfig, SelectReject, SelectedBlock,
};
use netsim::build::{build, ScenarioConfig};
use netsim::{Addr, Block24, FaultConfig};
use probe::{zmap, Prober, ZmapSnapshot};
use std::collections::BTreeMap;

const B: Block24 = Block24(0x0A_0102);

fn snapshot_with(block: Block24, hosts: &[u8]) -> ZmapSnapshot {
    let mut active = BTreeMap::new();
    active.insert(block, hosts.iter().map(|&h| block.addr(h)).collect());
    ZmapSnapshot {
        active,
        epoch: 0,
        probes: 0,
    }
}

#[test]
fn select_rejects_empty_block() {
    // A /24 present in the snapshot with zero active addresses is the same
    // reject as one with too few — never a panic, never a selection.
    let snap = snapshot_with(B, &[]);
    assert_eq!(
        select_block(&snap, B).unwrap_err(),
        SelectReject::TooFewActive
    );
}

#[test]
fn select_rejects_single_responsive_address() {
    for host in [0u8, 1, 255] {
        let snap = snapshot_with(B, &[host]);
        assert_eq!(
            select_block(&snap, B).unwrap_err(),
            SelectReject::TooFewActive,
            "host {host}"
        );
    }
}

#[test]
fn select_boundary_hosts_land_in_outer_quarters() {
    // .0 and .255 are valid snapshot actives; they must map to quarters 0
    // and 3 so a block covered only at its rim still selects.
    let snap = snapshot_with(B, &[0, 70, 130, 255]);
    let sel = select_block(&snap, B).unwrap();
    assert_eq!(sel.quarters[0], vec![B.addr(0)]);
    assert_eq!(sel.quarters[3], vec![B.addr(255)]);
}

#[test]
fn probing_order_of_empty_selection_is_empty() {
    let sel = SelectedBlock {
        block: B,
        quarters: [vec![], vec![], vec![], vec![]],
    };
    assert!(probing_order(&sel, 7).is_empty());
}

#[test]
fn probing_order_single_address() {
    let sel = SelectedBlock {
        block: B,
        quarters: [vec![B.addr(9)], vec![], vec![], vec![]],
    };
    assert_eq!(probing_order(&sel, 7), vec![B.addr(9)]);
    // Seed changes cannot conjure or lose addresses.
    assert_eq!(probing_order(&sel, 8), vec![B.addr(9)]);
}

#[test]
fn reprobe_order_empty_and_duplicate_inputs() {
    assert!(reprobe_order(B, &[], 7).is_empty());
    // Duplicates collapse: the schedule is over the *set* of unresolved
    // destinations, however messily a worker collected them.
    let dups = [B.addr(5), B.addr(5), B.addr(9), B.addr(5), B.addr(9)];
    let order = reprobe_order(B, &dups, 7);
    assert_eq!(order.len(), 2);
    let mut sorted = order.clone();
    sorted.sort();
    assert_eq!(sorted, vec![B.addr(5), B.addr(9)]);
}

#[test]
fn classify_empty_selection_is_too_few_active() {
    // A degenerate selection (all quarters empty) must classify without
    // probing anything, not hang or panic.
    let mut scenario = build(ScenarioConfig::tiny(42));
    let sel = SelectedBlock {
        block: B,
        quarters: [vec![], vec![], vec![], vec![]],
    };
    let mut prober = Prober::new(&mut scenario.network, 0x0B17);
    let m = classify_block(
        &mut prober,
        &sel,
        &ConfidenceTable::empty(),
        &HobbitConfig::default(),
    );
    assert_eq!(m.classification, Classification::TooFewActive);
    assert_eq!(m.dests_probed, 0);
    assert_eq!(m.probes_used, 0);
    assert_eq!(m.reprobes, 0);
    assert!(m.lasthop_set.is_empty());
}

#[test]
fn classify_single_address_selection_is_too_few_active() {
    // One live destination can resolve a last hop but never support a
    // verdict (min_active is 4).
    let mut scenario = build(ScenarioConfig::tiny(42));
    let snapshot = zmap::scan_all(&mut scenario.network);
    let (block, actives) = snapshot
        .active
        .iter()
        .find(|(_, a)| a.len() >= 4)
        .map(|(b, a)| (*b, a.clone()))
        .expect("some block has actives");
    let one = actives[0];
    let mut quarters: [Vec<Addr>; 4] = Default::default();
    quarters[one.quarter26() as usize].push(one);
    let sel = SelectedBlock { block, quarters };
    let mut prober = Prober::new(&mut scenario.network, 0x0B17);
    let m = classify_block(
        &mut prober,
        &sel,
        &ConfidenceTable::empty(),
        &HobbitConfig::default(),
    );
    assert_eq!(m.classification, Classification::TooFewActive);
    assert_eq!(m.dests_probed, 1);
    assert!(m.dests_resolved <= 1);
}

#[test]
fn total_loss_exhausts_reprobe_rounds() {
    // Under link loss 1.0 nothing ever answers: every destination stays
    // unresolved, every configured reprobe round runs over the full set
    // (reprobe_order re-visits exactly the unresolved destinations), and
    // the block degrades to TooFewActive with consistent counters.
    let mut scenario = build(ScenarioConfig::tiny(42));
    let snapshot = zmap::scan_all(&mut scenario.network);
    scenario.network.set_faults(FaultConfig {
        link_loss: 1.0,
        ..FaultConfig::none()
    });
    let block = snapshot
        .blocks()
        .find(|&b| select_block(&snapshot, b).is_ok())
        .expect("some block selects");
    let sel = select_block(&snapshot, block).unwrap();
    let cfg = HobbitConfig {
        prober_retries: 0,
        reprobe_rounds: 3,
        ..HobbitConfig::default()
    };
    let mut prober = Prober::new(&mut scenario.network, 0x0B17);
    let m = classify_block(&mut prober, &sel, &ConfidenceTable::empty(), &cfg);
    let n = sel.active_count();
    assert_eq!(m.classification, Classification::TooFewActive);
    assert_eq!(m.dests_probed, n);
    assert_eq!(m.dests_unresolved, n, "no answer ever arrives");
    assert_eq!(m.dests_resolved, 0);
    assert_eq!(m.dests_anonymous, 0);
    assert!(m.lasthop_set.is_empty());
    assert_eq!(
        m.reprobes,
        cfg.reprobe_rounds * n,
        "every round re-visits every unresolved destination"
    );
}

#[test]
fn all_unresponsive_block_yields_unresponsive_lasthop() {
    // A block behind a last-hop router that never answers TTL-exceeded:
    // destinations echo fine, the last hop stays anonymous, and the
    // verdict is UnresponsiveLasthop — not TooFewActive (the hosts are
    // there) and certainly not a homogeneity claim.
    let mut scenario = build(ScenarioConfig::tiny(42));
    let snapshot = zmap::scan_all(&mut scenario.network);
    let block = snapshot
        .blocks()
        .find(|b| {
            let t = &scenario.truth.blocks[b];
            t.homogeneous
                && !scenario.truth.pops[t.pop as usize].responsive
                && select_block(&snapshot, *b).is_ok()
        })
        .expect("tiny scenario plants an unresponsive pop");
    let sel = select_block(&snapshot, block).unwrap();
    let mut prober = Prober::new(&mut scenario.network, 0x0B17);
    let m = classify_block(
        &mut prober,
        &sel,
        &ConfidenceTable::empty(),
        &HobbitConfig::default(),
    );
    assert_eq!(m.classification, Classification::UnresponsiveLasthop);
    assert!(m.dests_anonymous >= 4, "{m:?}");
    assert!(m.lasthop_set.is_empty());
}
