//! Shared concurrent access to a [`Network`].
//!
//! The forwarding engine is almost entirely read-only: route tables, host
//! profiles, RTT and host oracles are pure functions of the scenario seed.
//! Only two pieces of state mutate per probe — the carried-probe counter
//! and the cellular radio warm-up set — so those live behind interior
//! mutability ([`std::sync::atomic::AtomicU64`] and the sharded
//! [`WarmedSet`]), which makes [`Network::send`] take `&self` and the whole
//! network `Sync`.
//!
//! Two ways to share one network across worker threads:
//!
//! * **Borrowed:** pass `&Network` into scoped threads (e.g.
//!   [`std::thread::scope`]). Zero setup cost; the classification
//!   pipeline uses this.
//! * **Owned:** wrap the network in a [`SharedNetwork`] — a cheaply
//!   clonable `Send + Sync` handle (an [`Arc`] under the hood) for
//!   `'static` contexts such as spawned threads or long-lived services.
//!
//! ```
//! use netsim::build::{build, ScenarioConfig};
//! use netsim::SharedNetwork;
//!
//! let scenario = build(ScenarioConfig::tiny(42));
//! let shared = SharedNetwork::new(scenario.network);
//! let handles: Vec<_> = (0..4)
//!     .map(|_| {
//!         let net = shared.clone();
//!         std::thread::spawn(move || net.network().vantage_addr())
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! let _network = shared.try_unwrap().expect("all handles dropped");
//! ```

use crate::addr::Addr;
use crate::forward::{Delivery, SendError};
use crate::topology::Network;
use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashSet;
use std::sync::Arc;

/// Number of lock shards in a [`WarmedSet`]. A power of two so the shard
/// index is a mask; 64 shards keep contention negligible at any realistic
/// worker count.
const SHARDS: usize = 64;

/// A concurrent set of addresses whose cellular radios have been woken by a
/// probe, sharded across [`SHARDS`] `parking_lot` locks keyed by address
/// hash so parallel workers probing different /24s never contend.
pub struct WarmedSet {
    shards: Vec<RwLock<HashSet<Addr>>>,
}

impl WarmedSet {
    /// An empty set.
    pub fn new() -> Self {
        WarmedSet {
            shards: (0..SHARDS).map(|_| RwLock::new(HashSet::new())).collect(),
        }
    }

    fn shard(&self, addr: Addr) -> &RwLock<HashSet<Addr>> {
        // Mix the bits so consecutive addresses of one /24 spread over
        // shards (a worker hammering one block still uses several locks).
        let h = crate::hash::mix2(addr.0 as u64, 0x57A8);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Whether `addr` has been warmed.
    pub fn contains(&self, addr: Addr) -> bool {
        self.shard(addr).read().contains(&addr)
    }

    /// Mark `addr` warmed. Returns whether it was cold before.
    pub fn insert(&self, addr: Addr) -> bool {
        self.shard(addr).write().insert(addr)
    }

    /// Warm `addr` and report whether it was cold, as one atomic step (the
    /// first probe of a cellular address sees the wake-up delay exactly
    /// once even under concurrent probing).
    pub fn warm(&self, addr: Addr) -> bool {
        self.insert(addr)
    }

    /// Forget all warmed addresses (epoch change: radios cool down).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Number of warmed addresses.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no address is warmed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }
}

impl Default for WarmedSet {
    fn default() -> Self {
        WarmedSet::new()
    }
}

impl Clone for WarmedSet {
    fn clone(&self) -> Self {
        WarmedSet {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for WarmedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmedSet")
            .field("len", &self.len())
            .finish()
    }
}

/// A cheaply clonable, `Send + Sync` handle to one shared [`Network`].
///
/// All probing goes through [`SharedNetwork::send`], which takes `&self`:
/// any number of worker threads can drive probes through the same handle
/// (or clones of it) with no per-thread network copy. Control-plane
/// operations that genuinely need exclusivity (epoch changes, topology
/// edits) are deliberately *not* exposed — reclaim the network with
/// [`SharedNetwork::try_unwrap`] first.
#[derive(Clone, Debug)]
pub struct SharedNetwork {
    inner: Arc<Network>,
}

impl SharedNetwork {
    /// Take ownership of a network and share it.
    pub fn new(network: Network) -> Self {
        SharedNetwork {
            inner: Arc::new(network),
        }
    }

    /// Shared view of the underlying network (probing, read accessors).
    pub fn network(&self) -> &Network {
        &self.inner
    }

    /// Inject a probe; see [`Network::send`]. Safe from any thread.
    pub fn send(&self, probe: Bytes) -> Result<Delivery, SendError> {
        self.inner.send(probe)
    }

    /// Reclaim exclusive ownership once every other handle is dropped;
    /// returns `Err(self)` while clones are still alive.
    pub fn try_unwrap(self) -> Result<Network, SharedNetwork> {
        Arc::try_unwrap(self.inner).map_err(|inner| SharedNetwork { inner })
    }

    /// Number of live handles to this network (including this one).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.inner)
    }
}

impl From<Network> for SharedNetwork {
    fn from(network: Network) -> Self {
        SharedNetwork::new(network)
    }
}

impl AsRef<Network> for SharedNetwork {
    fn as_ref(&self) -> &Network {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, ScenarioConfig};
    use crate::forward::encode_probe;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn network_and_handle_are_send_sync() {
        assert_send_sync::<Network>();
        assert_send_sync::<SharedNetwork>();
        assert_send_sync::<WarmedSet>();
    }

    #[test]
    fn warmed_set_basics() {
        let set = WarmedSet::new();
        let a = Addr::new(10, 0, 0, 1);
        assert!(set.is_empty());
        assert!(!set.contains(a));
        assert!(set.warm(a), "first warm reports cold");
        assert!(!set.warm(a), "second warm reports already-warm");
        assert!(set.contains(a));
        assert_eq!(set.len(), 1);
        set.clear();
        assert!(set.is_empty());
    }

    #[test]
    fn warmed_set_clone_is_deep() {
        let set = WarmedSet::new();
        set.warm(Addr::new(10, 0, 0, 1));
        let copy = set.clone();
        copy.warm(Addr::new(10, 0, 0, 2));
        assert_eq!(set.len(), 1, "clone must not alias the original");
        assert_eq!(copy.len(), 2);
    }

    #[test]
    fn shared_sends_match_exclusive_sends() {
        // The same probe sequence through a shared handle produces byte
        // identical responses to the exclusive-ownership path.
        let scenario = build(ScenarioConfig::tiny(42));
        let exclusive = scenario.network.clone();
        let shared = SharedNetwork::new(scenario.network);
        let vantage = shared.network().vantage_addr();
        for (i, &block) in shared
            .network()
            .allocated_blocks()
            .iter()
            .take(20)
            .enumerate()
        {
            let probe = encode_probe(vantage, block.addr(10), 64, 7, i as u16, 0xBEEF, i as u16);
            let a = shared.send(probe.clone()).unwrap();
            let b = exclusive.send(probe).unwrap();
            assert_eq!(a.response, b.response);
            assert_eq!(a.rtt_us, b.rtt_us);
        }
    }

    #[test]
    fn try_unwrap_respects_live_handles() {
        let scenario = build(ScenarioConfig::tiny(1));
        let shared = SharedNetwork::new(scenario.network);
        let extra = shared.clone();
        assert_eq!(shared.handle_count(), 2);
        let shared = shared.try_unwrap().expect_err("clone still alive");
        drop(extra);
        assert!(shared.try_unwrap().is_ok());
    }

    #[test]
    fn concurrent_probe_accounting_is_exact() {
        let scenario = build(ScenarioConfig::tiny(42));
        let net = &scenario.network;
        let vantage = net.vantage_addr();
        let blocks = net.allocated_blocks();
        let per_thread = 50usize;
        let threads = 8usize;
        std::thread::scope(|s| {
            for t in 0..threads {
                let blocks = &blocks;
                s.spawn(move || {
                    for i in 0..per_thread {
                        let dst = blocks[(t * per_thread + i) % blocks.len()].addr(9);
                        let probe =
                            encode_probe(vantage, dst, 64, t as u16, i as u16, 0xAAAA, i as u16);
                        net.send(probe).unwrap();
                    }
                });
            }
        });
        assert_eq!(net.probes_carried(), (threads * per_thread) as u64);
    }
}
