//! Routers and the `Network` container.
//!
//! A `Network` is a set of routers (each with a route table and an ECMP
//! salt), a vantage point, and the per-/24 host profiles. The forwarding
//! logic lives in [`crate::forward`]; scenario construction in
//! [`crate::build`].

use crate::addr::{Addr, Block24};
use crate::concurrent::WarmedSet;
use crate::dynamics::{DynamicsConfig, DynamicsCounters, DynamicsEvent, VirtualClock};
use crate::fault::{FaultConfig, FaultCounters, NetworkStats, TokenBuckets};
use crate::hash::mix2;
use crate::host::{HostOracle, HostProfile};
use crate::route::{NextHop, NextHopGroup, RouteTable, RouterId};
use crate::rtt::RttModel;
use obs::{Counter, Recorder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A router in the simulated internet.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Router {
    /// The router's identity.
    pub id: RouterId,
    /// The interface address it sources ICMP errors from. Routers that
    /// appear multiple times on parallel paths have distinct addresses, so a
    /// traceroute can tell them apart — that is all Hobbit observes.
    pub addr: Addr,
    /// Whether the router answers TTL-exceeded at all. Anonymous routers
    /// show up as `*` in traceroutes.
    pub responsive: bool,
    /// Probability that an individual ICMP error is suppressed
    /// (rate limiting). Deterministic per probe.
    pub icmp_loss: f32,
    /// A second interface address some routers alternate their ICMP errors
    /// from (a classic traceroute artifact: the reply interface depends on
    /// internal load balancing). Inflates entire-traceroute cardinality
    /// without affecting which *router* serves a destination.
    pub alt_addr: Option<Addr>,
    /// The router's forwarding table.
    pub table: RouteTable,
}

impl Router {
    /// A responsive router with an empty table and no rate limiting.
    pub fn new(id: RouterId, addr: Addr) -> Self {
        Router {
            id,
            addr,
            responsive: true,
            icmp_loss: 0.0,
            alt_addr: None,
            table: RouteTable::new(),
        }
    }
}

/// The simulated internet.
///
/// Topology, oracles, and RTT models are immutable once a scenario is
/// built; the only state that mutates per probe — the carried-probe
/// counter and the cellular warm-up set — lives behind interior
/// mutability, so [`Network::send`](crate::forward) takes `&self` and the
/// network is `Sync`: any number of worker threads may probe one shared
/// instance (see [`crate::concurrent`]).
#[derive(Debug)]
pub struct Network {
    pub(crate) routers: Vec<Router>,
    pub(crate) vantage_addr: Addr,
    pub(crate) vantage_router: RouterId,
    /// Additional vantage points (source address → first-hop router).
    /// Reprobing from another vantage reveals paths chosen by balancers
    /// that hash the source address (paper Section 6.1).
    pub(crate) extra_vantages: Vec<(Addr, RouterId)>,
    pub(crate) blocks: HashMap<Block24, HostProfile>,
    pub(crate) oracle: HostOracle,
    pub(crate) rtt: RttModel,
    pub(crate) seed: u64,
    /// Current measurement epoch; 0 is the ZMap snapshot.
    pub(crate) epoch: u32,
    /// Cellular radio state: addresses that have been woken by a probe.
    pub(crate) warmed: WarmedSet,
    /// Total probe packets the network has carried (cost accounting).
    pub(crate) probes_carried: Counter,
    /// Fault-injection knobs (inactive by default).
    pub(crate) faults: FaultConfig,
    /// Per-stream ICMP rate-limit buckets (used when faults enable them).
    pub(crate) buckets: TokenBuckets,
    /// Drop accounting for the fault layer.
    pub(crate) fault_counters: FaultCounters,
    /// Time-evolving dynamics: event schedule + netem (inactive by default).
    pub(crate) dynamics: DynamicsConfig,
    /// `dynamics.events` indexed by router id for O(1) per-hop lookup.
    pub(crate) dyn_events: HashMap<u32, Vec<DynamicsEvent>>,
    /// Per-stream virtual probe-count clocks driving the event schedule.
    pub(crate) vclock: VirtualClock,
    /// Applied-dynamics accounting.
    pub(crate) dyn_counters: DynamicsCounters,
}

impl Clone for Network {
    fn clone(&self) -> Self {
        Network {
            routers: self.routers.clone(),
            vantage_addr: self.vantage_addr,
            vantage_router: self.vantage_router,
            extra_vantages: self.extra_vantages.clone(),
            blocks: self.blocks.clone(),
            oracle: self.oracle,
            rtt: self.rtt,
            seed: self.seed,
            epoch: self.epoch,
            warmed: self.warmed.clone(),
            probes_carried: self.probes_carried.fork(),
            faults: self.faults,
            buckets: self.buckets.clone(),
            fault_counters: self.fault_counters.clone(),
            dynamics: self.dynamics.clone(),
            dyn_events: self.dyn_events.clone(),
            vclock: self.vclock.clone(),
            dyn_counters: self.dyn_counters.clone(),
        }
    }
}

impl Network {
    /// Create an empty network with a vantage point attached to a first
    /// router that must be added as router 0.
    pub fn new(seed: u64, vantage_addr: Addr) -> Self {
        Network {
            routers: Vec::new(),
            vantage_addr,
            vantage_router: RouterId(0),
            extra_vantages: Vec::new(),
            blocks: HashMap::new(),
            oracle: HostOracle::new(seed),
            rtt: RttModel::new(seed),
            seed,
            epoch: 1,
            warmed: WarmedSet::new(),
            probes_carried: Counter::new(),
            faults: FaultConfig::none(),
            buckets: TokenBuckets::new(),
            fault_counters: FaultCounters::default(),
            dynamics: DynamicsConfig::none(),
            dyn_events: HashMap::new(),
            vclock: VirtualClock::new(),
            dyn_counters: DynamicsCounters::default(),
        }
    }

    /// Add a router and return its id. Ids are assigned densely in order.
    pub fn add_router(&mut self, addr: Addr) -> RouterId {
        let id = RouterId(self.routers.len() as u32);
        self.routers.push(Router::new(id, addr));
        id
    }

    /// Mutable access to a router (to install routes or toggle flags).
    pub fn router_mut(&mut self, id: RouterId) -> &mut Router {
        &mut self.routers[id.0 as usize]
    }

    /// Shared access to a router.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    /// Number of routers.
    pub fn router_count(&self) -> usize {
        self.routers.len()
    }

    /// Install a route at a router.
    pub fn install_route(
        &mut self,
        at: RouterId,
        prefix: crate::addr::Prefix,
        group: NextHopGroup,
    ) {
        self.router_mut(at).table.insert(prefix, group);
    }

    /// Declare the host population of a /24 block.
    pub fn set_block_profile(&mut self, block: Block24, profile: HostProfile) {
        self.blocks.insert(block, profile);
    }

    /// The host profile of a block, if any hosts were allocated there.
    pub fn block_profile(&self, block: Block24) -> Option<&HostProfile> {
        self.blocks.get(&block)
    }

    /// All blocks that have host allocations, in numeric order.
    pub fn allocated_blocks(&self) -> Vec<Block24> {
        let mut v: Vec<Block24> = self.blocks.keys().copied().collect();
        v.sort();
        v
    }

    /// The primary vantage point's source address.
    pub fn vantage_addr(&self) -> Addr {
        self.vantage_addr
    }

    /// Register an additional vantage point: probes sourced from `addr`
    /// enter the network at `first_hop`. Returns the vantage's address for
    /// symmetry with [`Network::vantage_addr`].
    pub fn add_vantage(&mut self, addr: Addr, first_hop: RouterId) -> Addr {
        assert!(
            (first_hop.0 as usize) < self.routers.len(),
            "first-hop router must exist"
        );
        self.extra_vantages.push((addr, first_hop));
        addr
    }

    /// All vantage addresses (primary first).
    pub fn vantages(&self) -> Vec<Addr> {
        let mut v = vec![self.vantage_addr];
        v.extend(self.extra_vantages.iter().map(|&(a, _)| a));
        v
    }

    /// The first-hop router for a probe sourced at `src`, if `src` is a
    /// registered vantage.
    pub(crate) fn vantage_router_for(&self, src: Addr) -> Option<RouterId> {
        if src == self.vantage_addr {
            return Some(self.vantage_router);
        }
        self.extra_vantages
            .iter()
            .find(|&&(a, _)| a == src)
            .map(|&(_, r)| r)
    }

    /// The current measurement epoch. Epoch 0 is the ZMap snapshot epoch;
    /// probing happens at epoch ≥ 1 so availability churn is visible.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Advance to a new epoch (availability re-rolls per host, and idle
    /// cellular radios cool down, so a new measurement campaign sees cold
    /// first-probe delays again).
    pub fn set_epoch(&mut self, epoch: u32) {
        if epoch != self.epoch {
            self.warmed.clear();
            // Rate-limit buckets refill while the campaign is idle.
            self.buckets.clear();
        }
        self.epoch = epoch;
    }

    /// The active fault-injection configuration.
    pub fn faults(&self) -> FaultConfig {
        self.faults
    }

    /// Install a fault-injection configuration. Resets token-bucket state
    /// (but not the drop counters, which are cumulative).
    pub fn set_faults(&mut self, faults: FaultConfig) {
        self.faults = faults;
        self.buckets.clear();
    }

    /// The active dynamics configuration.
    pub fn dynamics(&self) -> &DynamicsConfig {
        &self.dynamics
    }

    /// Install a time-evolving dynamics configuration. Resets the virtual
    /// clocks (but not the applied-dynamics counters, which are cumulative).
    /// Like [`Network::set_faults`], the pipeline installs this *after* the
    /// ZMap snapshot, so epoch-0 scans always see the frozen world.
    pub fn set_dynamics(&mut self, dynamics: DynamicsConfig) {
        self.dyn_events.clear();
        if dynamics.events_active() {
            for &ev in &dynamics.events {
                self.dyn_events.entry(ev.router().0).or_default().push(ev);
            }
        }
        self.dynamics = dynamics;
        self.vclock.clear();
    }

    /// Snapshot the probe and fault accounting.
    pub fn net_stats(&self) -> NetworkStats {
        NetworkStats {
            probes_carried: self.probes_carried(),
            link_drops: self.fault_counters.link_drops.get(),
            rate_limited_drops: self.fault_counters.rate_limited_drops.get(),
            icmp_loss_drops: self.fault_counters.icmp_loss_drops.get(),
            dyn_rewrites: self.dyn_counters.rewrites.get(),
            dyn_resizes: self.dyn_counters.resizes.get(),
            dyn_loops: self.dyn_counters.loops.get(),
            dyn_addr_reuses: self.dyn_counters.addr_reuses.get(),
            dyn_false_diamonds: self.dyn_counters.false_diamonds.get(),
            netem_delays: self.dyn_counters.netem_delays.get(),
            netem_reorders: self.dyn_counters.netem_reorders.get(),
            netem_duplicates: self.dyn_counters.netem_duplicates.get(),
        }
    }

    /// Report the network's counters through `rec` from now on: the
    /// carried-probe and fault-drop counters are re-interned in the
    /// recorder's registry (current values carried over), so every later
    /// probe shows up in the exported metrics document. Attach *before*
    /// the first probe so runs with different thread counts agree on the
    /// counter values.
    pub fn set_recorder(&mut self, rec: &dyn Recorder) {
        let interned = rec.counter("net.probes_carried");
        interned.add(self.probes_carried.get());
        self.probes_carried = interned;
        self.fault_counters.attach(rec);
        self.dyn_counters.attach(rec);
    }

    /// Host oracle (for ground-truth checks in tests).
    pub fn oracle(&self) -> &HostOracle {
        &self.oracle
    }

    /// Count of probe packets carried so far.
    pub fn probes_carried(&self) -> u64 {
        self.probes_carried.get()
    }

    /// Record one carried probe (thread-safe; called from `send`).
    pub(crate) fn record_carried_probe(&self) {
        self.probes_carried.inc();
    }

    /// Per-router ECMP salt.
    pub(crate) fn salt(&self, id: RouterId) -> u64 {
        mix2(self.seed, id.0 as u64)
    }

    /// Resolve which routers would be the *last-hop routers* of `dst` by
    /// walking route tables without any load-balancer choice: the set of all
    /// routers holding a `Deliver` entry reachable for this destination.
    ///
    /// This is ground truth for tests — a real measurement cannot do this.
    pub fn true_lasthop_set(&self, dst: Addr) -> Vec<RouterId> {
        let mut out = Vec::new();
        let mut stack = vec![self.vantage_router];
        let mut seen = vec![false; self.routers.len()];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut seen[id.0 as usize], true) {
                continue;
            }
            let router = self.router(id);
            if let Some((_, group)) = router.table.lookup(dst) {
                for &hop in group.hops() {
                    match hop {
                        NextHop::Deliver => {
                            if !out.contains(&id) {
                                out.push(id);
                            }
                        }
                        NextHop::Router(next) => stack.push(next),
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// [`Network::true_lasthop_set`], mapped to the routers' primary
    /// interface addresses (sorted) — directly comparable to a measured
    /// last-hop set when no router aliases its replies.
    pub fn true_lasthop_addrs(&self, dst: Addr) -> Vec<Addr> {
        let mut out: Vec<Addr> = self
            .true_lasthop_set(dst)
            .into_iter()
            .map(|id| self.router(id).addr)
            .collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::route::LbPolicy;

    fn tiny() -> Network {
        // vantage -> r0 -> {r1, r2} -> deliver 10.0.0.0/24
        let mut net = Network::new(1, Addr::new(192, 0, 2, 1));
        let r0 = net.add_router(Addr::new(10, 255, 0, 1));
        let r1 = net.add_router(Addr::new(10, 255, 0, 2));
        let r2 = net.add_router(Addr::new(10, 255, 0, 3));
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        net.install_route(
            r0,
            p,
            NextHopGroup::ecmp(
                vec![NextHop::Router(r1), NextHop::Router(r2)],
                LbPolicy::PerDestination,
            ),
        );
        net.install_route(r1, p, NextHopGroup::single(NextHop::Deliver));
        net.install_route(r2, p, NextHopGroup::single(NextHop::Deliver));
        net.set_block_profile(Addr::new(10, 0, 0, 0).block24(), HostProfile::default());
        net
    }

    #[test]
    fn router_ids_are_dense() {
        let net = tiny();
        assert_eq!(net.router_count(), 3);
        assert_eq!(net.router(RouterId(1)).id, RouterId(1));
    }

    #[test]
    fn true_lasthop_set_finds_both_parallel_routers() {
        let net = tiny();
        let set = net.true_lasthop_set(Addr::new(10, 0, 0, 7));
        assert_eq!(set, vec![RouterId(1), RouterId(2)]);
    }

    #[test]
    fn true_lasthop_addrs_map_ids_to_interfaces() {
        let net = tiny();
        let addrs = net.true_lasthop_addrs(Addr::new(10, 0, 0, 7));
        assert_eq!(
            addrs,
            vec![Addr::new(10, 255, 0, 2), Addr::new(10, 255, 0, 3)]
        );
    }

    #[test]
    fn true_lasthop_set_empty_for_unrouted() {
        let net = tiny();
        assert!(net.true_lasthop_set(Addr::new(11, 0, 0, 7)).is_empty());
    }

    #[test]
    fn block_profiles_are_recorded() {
        let net = tiny();
        let b = Addr::new(10, 0, 0, 0).block24();
        assert!(net.block_profile(b).is_some());
        assert_eq!(net.allocated_blocks(), vec![b]);
    }
}
