//! Time-evolving network dynamics: a seeded, deterministic event schedule
//! driven by a *virtual probe-count clock*.
//!
//! Frozen worlds miss a whole class of real measurement hazards: routes
//! churn mid-campaign, load balancers are reconfigured between probing
//! rounds, and traceroute's own artifacts (transient loops, address-reuse
//! cycles, misattributed-hop false diamonds) inject phantom structure into
//! exactly the last-hop evidence Hobbit classifies on. This module makes the
//! simulated internet evolve *while a campaign probes it* — without giving
//! up any of the determinism contracts the rest of the repo is built on.
//!
//! ## The virtual clock
//!
//! Wall-clock time would make the world depend on scheduling, so dynamics
//! advance on **probe counts**. A global count would still depend on how
//! worker threads interleave, so the clock is sharded per *probe stream* —
//! keyed `(icmp ident, destination /24)`, the same stream identity the ICMP
//! token buckets use. Every classification prober owns one ident and probes
//! one block, so a stream's tick count is exactly that prober's local probe
//! count: a pure function of the stream prefix, byte-identical at any thread
//! count, across kill→resume (the journal pins the schedule and completed
//! blocks are never re-probed), and across shard counts.
//!
//! Ticks are grouped into **epochs** of `period` probes. An event fires "at
//! epoch E": rewrites and resizes stay in force from E onward (the latest
//! applicable event of a kind wins), while transient loops are active only
//! *during* their epoch — they heal, like the real thing.
//!
//! ## The artifact taxonomy
//!
//! * [`DynamicsEvent::NextHopRewrite`] — route churn: the router's ECMP
//!   selection is re-salted from the epoch on, so flows that mapped to one
//!   next hop remap to another over existing links (no topology surgery).
//! * [`DynamicsEvent::LbResize`] — load-balancer reconfiguration: selection
//!   is clamped to the group's first `width` next hops. Narrow, collapse to
//!   one, or widen back with a later event.
//! * [`DynamicsEvent::TransientLoop`] — for one epoch the router forwards
//!   back toward where the probe came from; probes bounce until TTL exhausts,
//!   yielding the alternating-address ladders traceroute folklore knows well.
//! * [`DynamicsEvent::AddressReuse`] — the router's ICMP errors are sourced
//!   from an address that already appears earlier on the path: an apparent
//!   routing cycle that is purely an addressing artifact.
//! * [`DynamicsEvent::FalseDiamond`] — the router alternates its reply
//!   source address per probe, fabricating a per-packet "diamond" that no
//!   forwarding divergence backs.
//!
//! On top of the event schedule, a [`NetemSpec`] perturbs delivered RTTs
//! netem-style (deterministic base delay + per-probe jitter draw, with
//! reorder/duplication modeled as tail-latency inflation and accounting —
//! a request/response simulator cannot literally reorder two in-flight
//! packets, so the observable effect is a late or repeated-cost reply).

use crate::addr::Addr;
use crate::hash::mix2;
use crate::route::RouterId;
use obs::{Counter, Recorder};
use parking_lot::RwLock;
use std::collections::HashMap;

/// Netem-style link perturbation applied to delivered replies.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetemSpec {
    /// Fixed extra one-way delay added to every reply, in microseconds.
    pub delay_us: u32,
    /// Uniform per-probe jitter bound, in microseconds.
    pub jitter_us: u32,
    /// Probability a reply is "reordered" — modeled as arriving a full
    /// jitter-window late (tail latency), since a request/response
    /// simulator has no second packet to swap it with.
    pub reorder_prob: f32,
    /// Probability the reply is duplicated on the wire. The duplicate is
    /// counted (and costs nothing else): the prober's request/response
    /// matching would discard it anyway.
    pub duplicate_prob: f32,
}

impl NetemSpec {
    /// Whether any perturbation knob is non-zero.
    pub fn is_active(&self) -> bool {
        self.delay_us > 0
            || self.jitter_us > 0
            || self.reorder_prob > 0.0
            || self.duplicate_prob > 0.0
    }
}

/// One scheduled change to the world, pinned to a virtual-clock epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DynamicsEvent {
    /// Route churn: re-salt `router`'s ECMP selection from `at_epoch` on.
    NextHopRewrite {
        /// The router whose next-hop selection is rewritten.
        router: RouterId,
        /// First epoch the rewrite is in force.
        at_epoch: u32,
    },
    /// Load-balancer reconfiguration: from `at_epoch` on, `router` selects
    /// among only its first `width` next hops. A later resize replaces it.
    LbResize {
        /// The router whose ECMP group is resized.
        router: RouterId,
        /// First epoch the resize is in force.
        at_epoch: u32,
        /// New effective fan width (clamped to the group's actual size).
        width: u8,
    },
    /// Transient forwarding loop: *during* `at_epoch` only, `router` sends
    /// probes back toward the previous hop instead of forward.
    TransientLoop {
        /// The looping router.
        router: RouterId,
        /// The single epoch the loop exists.
        at_epoch: u32,
    },
    /// Address-reuse cycle: from `at_epoch` on, `router` sources its ICMP
    /// errors from `alias` — an address already seen earlier on the path.
    AddressReuse {
        /// The router whose reply source is rewritten.
        router: RouterId,
        /// First epoch the reuse is in force.
        at_epoch: u32,
        /// The reused (upstream) address.
        alias: Addr,
    },
    /// Misattributed-hop false diamond: from `at_epoch` on, `router`
    /// alternates its reply source between its own address and `alias`
    /// per probe, fabricating a phantom per-packet interface pair.
    FalseDiamond {
        /// The router whose replies alternate.
        router: RouterId,
        /// First epoch the alternation is in force.
        at_epoch: u32,
        /// The phantom second interface address.
        alias: Addr,
    },
}

impl DynamicsEvent {
    /// The router the event applies to.
    pub fn router(&self) -> RouterId {
        match *self {
            DynamicsEvent::NextHopRewrite { router, .. }
            | DynamicsEvent::LbResize { router, .. }
            | DynamicsEvent::TransientLoop { router, .. }
            | DynamicsEvent::AddressReuse { router, .. }
            | DynamicsEvent::FalseDiamond { router, .. } => router,
        }
    }

    /// The epoch the event fires at.
    pub fn at_epoch(&self) -> u32 {
        match *self {
            DynamicsEvent::NextHopRewrite { at_epoch, .. }
            | DynamicsEvent::LbResize { at_epoch, .. }
            | DynamicsEvent::TransientLoop { at_epoch, .. }
            | DynamicsEvent::AddressReuse { at_epoch, .. }
            | DynamicsEvent::FalseDiamond { at_epoch, .. } => at_epoch,
        }
    }
}

/// The compiled dynamics for one network: an epoch length, an event
/// schedule, and optional netem perturbation. Inactive by default.
///
/// The schedule is data, not state: it is a pure function of the scenario
/// (derived from spec or seed before probing starts), so replaying it —
/// after a crash, on another shard, at another thread count — reproduces
/// the same world evolution exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DynamicsConfig {
    /// Virtual-clock probes per epoch, per stream. `0` disables the event
    /// schedule entirely (the clock never ticks).
    pub period: u64,
    /// The event schedule. Order is irrelevant; effective behavior is
    /// "latest applicable event of a kind per router wins".
    pub events: Vec<DynamicsEvent>,
    /// Netem-style RTT perturbation, applied independently of the epoch.
    pub netem: Option<NetemSpec>,
}

impl DynamicsConfig {
    /// No dynamics (the default): the frozen world every earlier PR pinned.
    pub fn none() -> Self {
        DynamicsConfig::default()
    }

    /// Whether the event schedule is live (period set and events present).
    pub fn events_active(&self) -> bool {
        self.period > 0 && !self.events.is_empty()
    }

    /// Whether anything at all is switched on.
    pub fn is_active(&self) -> bool {
        self.events_active() || self.netem.map(|n| n.is_active()).unwrap_or(false)
    }

    /// The epoch a stream at virtual tick `tick` is in.
    pub fn epoch_of(&self, tick: u64) -> u32 {
        tick.checked_div(self.period)
            .map_or(0, |e| e.min(u32::MAX as u64) as u32)
    }
}

/// Number of lock shards; a power of two, mirroring
/// [`TokenBuckets`](crate::fault::TokenBuckets).
const SHARDS: usize = 64;

/// The identity of one virtual-clock stream: `(icmp ident, destination /24)`.
/// Classification probers own one ident and probe one block, so this is
/// exactly "one prober's sequential sends" — see the module docs.
type ClockKey = (u16, u32);

/// Sharded per-stream virtual clocks. A stream's tick count advances by one
/// per probe the network carries for it, independent of every other stream.
pub(crate) struct VirtualClock {
    shards: Vec<RwLock<HashMap<ClockKey, u64>>>,
}

impl VirtualClock {
    pub(crate) fn new() -> Self {
        VirtualClock {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &ClockKey) -> &RwLock<HashMap<ClockKey, u64>> {
        let h = mix2(key.1 as u64, 0xC10C ^ key.0 as u64);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// Advance the stream's clock by one probe; returns the tick the probe
    /// occupies (0-based: the first probe on a stream is tick 0).
    pub(crate) fn tick(&self, key: ClockKey) -> u64 {
        let mut map = self.shard(&key).write();
        let t = map.entry(key).or_insert(0);
        let now = *t;
        *t += 1;
        now
    }

    /// Forget all clock state (dynamics reconfiguration).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clone for VirtualClock {
    fn clone(&self) -> Self {
        VirtualClock {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for VirtualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VirtualClock")
            .field("streams", &self.len())
            .finish()
    }
}

/// Thread-safe dynamics accounting, mirroring
/// [`FaultCounters`](crate::fault::FaultCounters): detached atomics until a
/// recorder interns them by name.
#[derive(Debug, Default)]
pub(crate) struct DynamicsCounters {
    /// Probe-hops whose next-hop selection used a rewritten salt.
    pub(crate) rewrites: Counter,
    /// Probe-hops whose ECMP group was clamped by a resize.
    pub(crate) resizes: Counter,
    /// Probes caught in a transient loop.
    pub(crate) loops: Counter,
    /// ICMP errors sourced from a reused upstream address.
    pub(crate) addr_reuses: Counter,
    /// ICMP errors sourced from a phantom false-diamond interface.
    pub(crate) false_diamonds: Counter,
    /// Replies delayed by netem (fixed delay and/or jitter).
    pub(crate) netem_delays: Counter,
    /// Replies arriving a full jitter window late ("reordered").
    pub(crate) netem_reorders: Counter,
    /// Replies duplicated on the wire.
    pub(crate) netem_duplicates: Counter,
}

impl DynamicsCounters {
    /// Re-home the counters in `rec`'s registry (carrying current values
    /// over), so dynamics activity shows up in the exported metrics.
    pub(crate) fn attach(&mut self, rec: &dyn Recorder) {
        for (name, c) in [
            ("net.dyn.rewrites", &mut self.rewrites),
            ("net.dyn.resizes", &mut self.resizes),
            ("net.dyn.loops", &mut self.loops),
            ("net.dyn.addr_reuses", &mut self.addr_reuses),
            ("net.dyn.false_diamonds", &mut self.false_diamonds),
            ("net.dyn.netem_delays", &mut self.netem_delays),
            ("net.dyn.netem_reorders", &mut self.netem_reorders),
            ("net.dyn.netem_duplicates", &mut self.netem_duplicates),
        ] {
            let interned = rec.counter(name);
            interned.add(c.get());
            *c = interned;
        }
    }
}

impl Clone for DynamicsCounters {
    fn clone(&self) -> Self {
        DynamicsCounters {
            rewrites: self.rewrites.fork(),
            resizes: self.resizes.fork(),
            loops: self.loops.fork(),
            addr_reuses: self.addr_reuses.fork(),
            false_diamonds: self.false_diamonds.fork(),
            netem_delays: self.netem_delays.fork(),
            netem_reorders: self.netem_reorders.fork(),
            netem_duplicates: self.netem_duplicates.fork(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        let d = DynamicsConfig::none();
        assert!(!d.is_active());
        assert!(!d.events_active());
        assert_eq!(d.epoch_of(10_000), 0);
    }

    #[test]
    fn epoch_boundaries() {
        let d = DynamicsConfig {
            period: 16,
            ..DynamicsConfig::none()
        };
        assert_eq!(d.epoch_of(0), 0);
        assert_eq!(d.epoch_of(15), 0);
        assert_eq!(d.epoch_of(16), 1);
        assert_eq!(d.epoch_of(47), 2);
    }

    #[test]
    fn events_need_a_period() {
        let d = DynamicsConfig {
            period: 0,
            events: vec![DynamicsEvent::TransientLoop {
                router: RouterId(3),
                at_epoch: 1,
            }],
            netem: None,
        };
        assert!(!d.events_active());
        let d = DynamicsConfig { period: 8, ..d };
        assert!(d.events_active() && d.is_active());
    }

    #[test]
    fn netem_alone_is_active() {
        let d = DynamicsConfig {
            netem: Some(NetemSpec {
                delay_us: 500,
                ..NetemSpec::default()
            }),
            ..DynamicsConfig::none()
        };
        assert!(d.is_active());
        assert!(!d.events_active());
        assert!(!NetemSpec::default().is_active());
    }

    #[test]
    fn clock_streams_are_independent() {
        let c = VirtualClock::new();
        let a = (0x4001u16, 0x0C0000u32);
        let b = (0x4002u16, 0x0C0000u32);
        assert_eq!(c.tick(a), 0);
        assert_eq!(c.tick(a), 1);
        assert_eq!(c.tick(b), 0);
        assert_eq!(c.tick(a), 2);
        // Same ident, different block: also a fresh stream.
        assert_eq!(c.tick((0x4001, 0x0C0001)), 0);
        c.clear();
        assert_eq!(c.tick(a), 0);
    }

    #[test]
    fn clock_clone_snapshots_state() {
        let c = VirtualClock::new();
        let key = (1u16, 2u32);
        c.tick(key);
        c.tick(key);
        let snap = c.clone();
        assert_eq!(c.tick(key), 2);
        assert_eq!(snap.tick(key), 2, "clone diverges independently");
    }

    #[test]
    fn event_accessors() {
        let e = DynamicsEvent::AddressReuse {
            router: RouterId(9),
            at_epoch: 3,
            alias: Addr::new(10, 100, 0, 1),
        };
        assert_eq!(e.router(), RouterId(9));
        assert_eq!(e.at_epoch(), 3);
    }
}
