//! Scenario construction: a synthetic internet with known ground truth.
//!
//! The builder lays out a vantage point, a small transit core with per-flow
//! *and* per-destination ECMP stages, and one subtree per AS from the
//! roster. Address allocations, load-balancer fan-outs, host densities and
//! churn are tuned so the *observable* phenomena match what the paper
//! measured from UMD: ~77% of /31 sibling pairs taking distinct routes,
//! ~30% with distinct last-hop routers, a quarter of blocks too sparse to
//! analyze, and one /24 in six served by anonymous last-hop routers.
//!
//! Unlike the real internet, the builder also returns [`GroundTruth`]:
//! which blocks are genuinely homogeneous, which PoP (colocation site)
//! serves them, and how heterogeneous blocks are split. Tests use it to
//! score Hobbit's inferences — something the paper itself could not do.

use crate::addr::{Addr, Block24, Prefix};
use crate::dynamics::{DynamicsConfig, DynamicsEvent};
use crate::fault::FaultConfig;
use crate::hash::{mix2, mix3, pick, unit_f64};
use crate::host::{HostKind, HostProfile, TtlMix};
use crate::roster::{paper_roster, AsSpec, OrgType};
use crate::route::{LbPolicy, NextHop, NextHopGroup, RouterId};
use crate::topology::Network;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Tunable parameters of a scenario.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Master seed; every random draw derives from it.
    pub seed: u64,
    /// Approximate number of ordinary (non-big-site) /24 blocks.
    pub target_blocks: usize,
    /// Scale factor applied to the Table-5 big-site sizes (1.0 = literal
    /// 1251-/24 sites).
    pub big_block_scale: f64,
    /// Fraction of blocks in hetero-capable ASes that get split into
    /// sub-/24 customer allocations.
    pub hetero_frac: f64,
    /// Fraction of ordinary PoPs whose last-hop routers never answer
    /// (drives Table 1's "Unresponsive last-hop" row, paper: 16.8%).
    pub unresponsive_pop_frac: f64,
    /// Fraction of core/border routers with ICMP rate limiting.
    pub rate_limit_frac: f64,
    /// Fraction of transit/intra routers answering from two alternating
    /// interface addresses (inflates traceroute cardinality).
    pub alt_interface_frac: f64,
    /// Fraction of ASes whose border balances per *packet* (rare in the
    /// wild — Augustin et al. saw ~2% of pairs — but it breaks even the
    /// Paris invariant, so the tools must tolerate it).
    pub per_packet_frac: f64,
    /// Host availability churn between the ZMap snapshot and probing.
    pub churn: f32,
    /// Probability of a correlated whole-block quiet period at probe time.
    pub quiet_prob: f32,
    /// Number of parallel transit routers (per-flow ECMP width).
    pub transit_fan: usize,
    /// Number of parallel backbone routers (per-destination ECMP width).
    pub backbone_fan: usize,
    /// Per-AS parallel intra routers (per-flow ECMP width).
    pub intra_fan: usize,
    /// Weights for PoPs having 1, 2, 3 or 4 last-hop routers.
    pub lh_fan_weights: [f64; 4],
    /// Extra vantage points besides the primary (paper §6.1: probing from
    /// several sources reveals paths chosen by source-hashing balancers).
    pub extra_vantages: usize,
    /// Fault injection (seeded link loss, ICMP token buckets); inactive by
    /// default so every scenario starts on the pristine substrate.
    pub faults: FaultConfig,
    /// The AS roster.
    pub roster: Vec<AsSpec>,
}

impl ScenarioConfig {
    /// Paper-scale scenario (tens of thousands of /24s). Big sites are kept
    /// at their literal Table-5 sizes so the aggregation tables reproduce.
    pub fn paper(seed: u64) -> Self {
        ScenarioConfig {
            seed,
            target_blocks: 32_768,
            big_block_scale: 1.0,
            hetero_frac: 0.17,
            unresponsive_pop_frac: 0.34,
            rate_limit_frac: 0.15,
            alt_interface_frac: 0.9,
            per_packet_frac: 0.03,
            churn: 0.07,
            quiet_prob: 0.30,
            transit_fan: 3,
            backbone_fan: 2,
            intra_fan: 2,
            lh_fan_weights: [0.20, 0.07, 0.38, 0.35],
            extra_vantages: 0,
            faults: FaultConfig::none(),
            roster: paper_roster(),
        }
    }

    /// A mid-size scenario for integration tests and quick experiments.
    pub fn small(seed: u64) -> Self {
        ScenarioConfig {
            target_blocks: 2_048,
            big_block_scale: 0.05,
            ..Self::paper(seed)
        }
    }

    /// A tiny scenario for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ScenarioConfig {
            target_blocks: 192,
            big_block_scale: 0.004,
            ..Self::paper(seed)
        }
    }
}

/// Ground truth about one /24 block.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BlockTruth {
    /// Index into the roster of the owning AS.
    pub as_idx: u16,
    /// Whether all addresses are served by one colocation site.
    pub homogeneous: bool,
    /// The serving PoP for homogeneous blocks (first sub-PoP otherwise).
    pub pop: u32,
    /// For heterogeneous blocks: the customer sub-allocations
    /// (prefix, serving PoP id); empty for homogeneous blocks.
    pub sub_blocks: Vec<(Prefix, u32)>,
}

/// Ground truth about one colocation site (PoP).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PopTruth {
    /// Dense PoP identifier.
    pub id: u32,
    /// Index into the roster of the owning AS.
    pub as_idx: u16,
    /// Region / city tag (drives geolocation and rDNS).
    pub region: String,
    /// Interface addresses of the PoP's last-hop routers — the colocation
    /// signature Hobbit tries to recover.
    pub lasthop_addrs: Vec<Addr>,
    /// Whether the PoP's last-hop routers answer TTL-exceeded.
    pub responsive: bool,
    /// Whether hosts behind this PoP are cellular devices.
    pub cellular: bool,
    /// Whether this is one of the named Table-5 big sites.
    pub big_site: bool,
    /// Whether this PoP is a per-customer sub-/24 allocation.
    pub sub_allocation: bool,
    /// How the aggregation router balances across the last-hop routers.
    /// Single-last-hop PoPs pin trivially and report `PerDestination`.
    /// Under `PerFlow`, one address legitimately sees *all* last-hops.
    pub lasthop_policy: LbPolicy,
}

/// Everything the builder knows that a measurer would not.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// The roster, in `as_idx` order.
    pub as_list: Vec<AsSpec>,
    /// All PoPs, indexed by id.
    pub pops: Vec<PopTruth>,
    /// Per-block truth, in numeric block order.
    pub blocks: BTreeMap<Block24, BlockTruth>,
}

impl GroundTruth {
    /// Whether a block is genuinely homogeneous.
    pub fn is_homogeneous(&self, b: Block24) -> bool {
        self.blocks.get(&b).map(|t| t.homogeneous).unwrap_or(false)
    }

    /// Blocks served by the same PoP as `b` (the true aggregate).
    pub fn colocated_with(&self, b: Block24) -> Vec<Block24> {
        let Some(t) = self.blocks.get(&b) else {
            return Vec::new();
        };
        if !t.homogeneous {
            return vec![b];
        }
        self.blocks
            .iter()
            .filter(|(_, bt)| bt.homogeneous && bt.pop == t.pop)
            .map(|(&blk, _)| blk)
            .collect()
    }

    /// The heterogeneous sub-block composition as sorted prefix lengths
    /// (e.g. `[25, 26, 26]`), or `None` for homogeneous blocks.
    pub fn composition(&self, b: Block24) -> Option<Vec<u8>> {
        let t = self.blocks.get(&b)?;
        if t.homogeneous {
            return None;
        }
        let mut lens: Vec<u8> = t.sub_blocks.iter().map(|(p, _)| p.len()).collect();
        lens.sort_unstable();
        Some(lens)
    }
}

/// A built scenario: the network plus its ground truth.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// The simulated internet.
    pub network: Network,
    /// What the builder knows.
    pub truth: GroundTruth,
    /// The configuration used.
    pub config: ScenarioConfig,
    /// PoP id → (aggregation router, last-hop routers). Sorted so that
    /// schedule derivation ([`derive_dynamics`]) iterates deterministically.
    pub pop_routers: BTreeMap<u32, (RouterId, Vec<RouterId>)>,
}

/// Table 2 sub-block compositions and their observed shares.
/// Each composition tiles a /24 exactly.
pub const HETERO_COMPOSITIONS: &[(&[u8], f64)] = &[
    (&[25, 25], 0.5048),
    (&[25, 26, 26], 0.2065),
    (&[26, 26, 26, 26], 0.1579),
    (&[25, 26, 27, 27], 0.0592),
    (&[26, 26, 26, 27, 27], 0.0463),
    (&[26, 26, 27, 27, 27, 27], 0.0113),
    (&[25, 26, 27, 28, 28], 0.0081),
    (&[25, 27, 27, 27, 27], 0.0058),
];

/// Tile a /24 with sub-prefixes of the given lengths (longest blocks first,
/// first-fit at aligned offsets). The composition must sum to a full /24.
pub fn tile_composition(block: Block24, lens: &[u8]) -> Vec<Prefix> {
    let mut lens: Vec<u8> = lens.to_vec();
    lens.sort_unstable(); // shortest prefix = largest block first
    let mut used = [false; 256];
    let mut out = Vec::with_capacity(lens.len());
    for len in lens {
        let size = (1usize << (32 - len as u32)).min(256);
        // Find the first aligned free offset.
        let mut placed = false;
        let mut off = 0usize;
        while off < 256 {
            if used[off..off + size].iter().all(|&u| !u) {
                used[off..off + size].iter_mut().for_each(|u| *u = true);
                out.push(Prefix::new(block.addr(off as u8), len));
                placed = true;
                break;
            }
            off += size;
        }
        assert!(placed, "composition does not tile a /24");
    }
    out
}

/// Decompose a run of consecutive /24 blocks `[start, start+len)` into the
/// minimal set of aligned CIDR prefixes covering exactly that range.
pub fn run_to_prefixes(start: Block24, len: u32) -> Vec<Prefix> {
    let mut out = Vec::new();
    let mut cur = start.0;
    let mut remaining = len;
    while remaining > 0 {
        let align = if cur == 0 {
            24
        } else {
            cur.trailing_zeros().min(24)
        };
        let mut size = 1u32 << align;
        while size > remaining {
            size >>= 1;
        }
        let plen = 24 - size.trailing_zeros() as u8;
        out.push(Prefix::new(Addr(cur << 8), plen));
        cur += size;
        remaining -= size;
    }
    out
}

/// Base access latency by country, microseconds (from a US-east vantage).
fn country_base_rtt_us(country: &str) -> u32 {
    match country {
        "US" => 35_000,
        "Canada" => 40_000,
        "UK" => 80_000,
        "France" => 90_000,
        "Germany" => 95_000,
        "Spain" => 100_000,
        "Denmark" => 100_000,
        "Switzerland" => 95_000,
        "Estonia" => 110_000,
        "Sweden" => 105_000,
        "Georgia" => 140_000,
        "Egypt" => 130_000,
        "Brazil" => 120_000,
        "Chile" => 130_000,
        "India" => 200_000,
        "Malaysia" => 230_000,
        "Singapore" => 220_000,
        "Japan" => 160_000,
        "Korea" => 180_000,
        "Australia" => 210_000,
        _ => 100_000,
    }
}

/// /14 slab allocator over the usable unicast space.
struct SlabAllocator {
    slabs: Vec<u32>, // block24 index of each /14 base
    next: usize,
}

impl SlabAllocator {
    fn new(rng: &mut ChaCha8Rng) -> Self {
        let mut slabs = Vec::new();
        let mut base = 0x04_0000u32; // 4.0.0.0
        while base < 0xDF_0000 {
            let first_octet = base >> 16;
            // Skip loopback-ish, RFC1918 10/8 (router infrastructure), and
            // the vantage's own 128.8/16 region.
            let vantage_slab = (0x80_0000..0x80_0400).contains(&base); // 128.0-128.15
            if first_octet != 10 && first_octet != 127 && !vantage_slab {
                slabs.push(base);
            }
            base += 0x400; // /14 = 1024 /24s
        }
        slabs.shuffle(rng);
        SlabAllocator { slabs, next: 0 }
    }

    fn take(&mut self) -> u32 {
        let s = self.slabs[self.next];
        self.next += 1;
        assert!(self.next <= self.slabs.len(), "address space exhausted");
        s
    }
}

/// Per-AS allocation cursor over its slabs.
struct AsAlloc {
    /// (slab base block24, cursor offset within slab).
    slabs: Vec<(u32, u32)>,
    /// Prefixes announced to the backbone (one per slab).
    announced: Vec<Prefix>,
}

impl AsAlloc {
    fn new() -> Self {
        AsAlloc {
            slabs: Vec::new(),
            announced: Vec::new(),
        }
    }

    /// Allocate `len` consecutive /24s, optionally in a fresh slab, skipping
    /// `gap` blocks first (creates the discontiguity of Figure 7/8).
    fn alloc_run(
        &mut self,
        len: u32,
        gap: u32,
        force_new_slab: bool,
        slabs: &mut SlabAllocator,
    ) -> (Block24, Vec<Prefix>) {
        const SLAB_BLOCKS: u32 = 1024;
        let need = len + gap;
        let idx = if !force_new_slab {
            self.slabs
                .iter()
                .position(|&(_, cursor)| cursor + need <= SLAB_BLOCKS)
        } else {
            None
        };
        let idx = match idx {
            Some(i) => i,
            None => {
                let base = slabs.take();
                self.slabs.push((base, 0));
                self.announced.push(Prefix::new(Addr(base << 8), 14));
                self.slabs.len() - 1
            }
        };
        let (base, cursor) = self.slabs[idx];
        // If even a fresh slab cannot hold the run (len > 1024), chain slabs:
        // the caller splits runs at 512 blocks, so this cannot happen.
        assert!(cursor + need <= SLAB_BLOCKS, "run too large for a slab");
        let start = Block24(base + cursor + gap);
        self.slabs[idx].1 = cursor + need;
        let prefixes = run_to_prefixes(start, len);
        (start, prefixes)
    }
}

/// Builder state.
struct Builder {
    net: Network,
    truth: GroundTruth,
    cfg: ScenarioConfig,
    rng: ChaCha8Rng,
    slabs: SlabAllocator,
    infra_counter: u32,
    backbones: Vec<RouterId>,
    /// PoP id → (agg router, last-hop routers).
    pop_lhs: HashMap<u32, (RouterId, Vec<RouterId>)>,
    /// Allocation cursor per AS.
    as_allocs: HashMap<u16, AsAlloc>,
}

impl Builder {
    fn infra_addr(&mut self) -> Addr {
        self.infra_counter += 1;
        assert!(
            self.infra_counter < 0x00FF_FFFF,
            "infrastructure space full"
        );
        Addr(0x0A00_0000 + self.infra_counter) // 10.x.y.z
    }

    fn add_infra_router(&mut self) -> RouterId {
        let a = self.infra_addr();
        self.net.add_router(a)
    }

    /// Build the vantage-side core:
    /// campus → gw → (per-dest × plane) → (per-flow × transit).
    ///
    /// The per-destination choice sits at the *plane* level so it covers
    /// every path to a destination: two addresses hashed to different
    /// planes share no route at all — which is why the paper finds 77% of
    /// /31 sibling pairs with entirely distinct route sets.
    fn build_core(&mut self) {
        let campus = self.add_infra_router(); // RouterId(0) = vantage router
        let gw = self.add_infra_router();
        debug_assert_eq!(campus, RouterId(0));

        let mut planes = Vec::with_capacity(self.cfg.backbone_fan);
        let mut transits = Vec::new();
        for p in 0..self.cfg.backbone_fan {
            let plane_gw = self.add_infra_router();
            if unit_f64(mix2(self.cfg.seed ^ 0xB1A, p as u64)) < self.cfg.alt_interface_frac {
                let alt = self.infra_addr();
                self.net.router_mut(plane_gw).alt_addr = Some(alt);
            }
            planes.push(plane_gw);
            let plane_transits: Vec<RouterId> = (0..self.cfg.transit_fan)
                .map(|_| self.add_infra_router())
                .collect();
            self.net.install_route(
                plane_gw,
                Prefix::ALL,
                NextHopGroup::ecmp(
                    plane_transits.iter().map(|&t| NextHop::Router(t)).collect(),
                    LbPolicy::PerFlow,
                ),
            );
            for (i, &t) in plane_transits.iter().enumerate() {
                let h = mix2(self.cfg.seed ^ 0x77, (p * 16 + i) as u64);
                let loss = if unit_f64(h) < self.cfg.rate_limit_frac {
                    0.2
                } else {
                    0.0
                };
                self.net.router_mut(t).icmp_loss = loss;
                if unit_f64(mix2(h, 3)) < self.cfg.alt_interface_frac {
                    let alt = self.infra_addr();
                    self.net.router_mut(t).alt_addr = Some(alt);
                }
            }
            transits.extend(plane_transits);
        }
        self.backbones = transits;

        self.net.install_route(
            campus,
            Prefix::ALL,
            NextHopGroup::single(NextHop::Router(gw)),
        );
        self.net.install_route(
            gw,
            Prefix::ALL,
            NextHopGroup::ecmp(
                planes.iter().map(|&t| NextHop::Router(t)).collect(),
                LbPolicy::PerDestination,
            ),
        );
        // Extra vantage points: each gets its own campus router feeding the
        // shared gateway, with a distinct source address so source-hashing
        // balancers (PerSrcDest) resolve differently per vantage.
        for v in 0..self.cfg.extra_vantages {
            let campus_v = self.add_infra_router();
            self.net.install_route(
                campus_v,
                Prefix::ALL,
                NextHopGroup::single(NextHop::Router(gw)),
            );
            let src = Addr::new(198, 18, v as u8, 10);
            self.net.add_vantage(src, campus_v);
        }
    }

    /// Announce a slab prefix: install routes at every transit router.
    fn announce(&mut self, prefix: Prefix, border: RouterId) {
        for &b in &self.backbones.clone() {
            self.net
                .install_route(b, prefix, NextHopGroup::single(NextHop::Router(border)));
        }
    }

    /// Draw the number of last-hop routers for an ordinary PoP.
    fn draw_lh_fan(&mut self) -> usize {
        let w = &self.cfg.lh_fan_weights;
        let total: f64 = w.iter().sum();
        let mut u = self.rng.gen::<f64>() * total;
        for (i, &wi) in w.iter().enumerate() {
            if u < wi {
                return i + 1;
            }
            u -= wi;
        }
        w.len()
    }

    /// Create a PoP: an aggregation router plus `fan` last-hop routers, and
    /// record the truth entry. Returns (pop id, agg router).
    #[allow(clippy::too_many_arguments)]
    fn create_pop(
        &mut self,
        as_idx: u16,
        region: String,
        fan: usize,
        cellular: bool,
        big_site: bool,
        sub_allocation: bool,
        responsive: bool,
    ) -> (u32, RouterId) {
        let agg = self.add_infra_router();
        let mut lhs = Vec::with_capacity(fan);
        let mut lh_addrs = Vec::with_capacity(fan);
        for _ in 0..fan {
            let lh = self.add_infra_router();
            self.net.router_mut(lh).responsive = responsive;
            lh_addrs.push(self.net.router(lh).addr);
            lhs.push(lh);
        }
        let id = self.truth.pops.len() as u32;
        self.truth.pops.push(PopTruth {
            id,
            as_idx,
            region,
            lasthop_addrs: lh_addrs,
            responsive,
            cellular,
            big_site,
            sub_allocation,
            lasthop_policy: self.lasthop_policy(id, fan),
        });
        // Stash the LH ids in the agg router's table when prefixes arrive;
        // the caller wires prefixes via `serve_prefix`.
        self.pop_lhs.insert(id, (agg, lhs));
        (id, agg)
    }

    /// Route `prefix` into a PoP: at the agg router, ECMP over the PoP's
    /// last-hop routers; each last-hop delivers.
    ///
    /// Multi-router PoPs come in two real-world styles, chosen per PoP:
    /// *per-destination* balancing (each address pinned to one last-hop —
    /// the confounder Hobbit exists to handle) and *per-flow* balancing
    /// (every address sees all last-hops; groups overlap trivially).
    fn serve_prefix(&mut self, pop: u32, prefix: Prefix) {
        let (agg, lhs) = self.pop_lhs.get(&pop).cloned().expect("pop exists");
        if lhs.len() == 1 {
            self.net
                .install_route(agg, prefix, NextHopGroup::single(NextHop::Router(lhs[0])));
        } else {
            let policy = self.lasthop_policy(pop, lhs.len());
            self.net.install_route(
                agg,
                prefix,
                NextHopGroup::ecmp(lhs.iter().map(|&l| NextHop::Router(l)).collect(), policy),
            );
        }
        for &lh in &lhs {
            self.net
                .install_route(lh, prefix, NextHopGroup::single(NextHop::Deliver));
        }
    }

    /// The agg→last-hop balancing style of a PoP (deterministic in the
    /// scenario seed and PoP id; recorded in [`PopTruth::lasthop_policy`]).
    fn lasthop_policy(&self, pop: u32, fan: usize) -> LbPolicy {
        if fan <= 1 {
            return LbPolicy::PerDestination;
        }
        let style = unit_f64(mix2(self.cfg.seed ^ 0x90F, pop as u64));
        if style < 0.19 {
            LbPolicy::PerFlow
        } else if style < 0.60 {
            LbPolicy::PerSrcDest
        } else {
            LbPolicy::PerDestination
        }
    }
}

use std::collections::HashMap;

impl Builder {
    fn new(cfg: ScenarioConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let slabs = SlabAllocator::new(&mut rng);
        let vantage = Addr::new(128, 8, 128, 10);
        Builder {
            net: Network::new(cfg.seed, vantage),
            truth: GroundTruth {
                as_list: cfg.roster.clone(),
                ..Default::default()
            },
            cfg,
            rng,
            slabs,
            infra_counter: 0,
            backbones: Vec::new(),
            pop_lhs: HashMap::new(),
            as_allocs: HashMap::new(),
        }
    }
}

/// Build a scenario from a configuration.
pub fn build(cfg: ScenarioConfig) -> Scenario {
    let mut b = Builder::new(cfg);
    b.build_core();

    let roster = b.truth.as_list.clone();
    let total_hetero = (b.cfg.target_blocks as f64
        * b.cfg.hetero_frac
        * roster.iter().map(|a| a.hetero_share).sum::<f64>())
    .round() as usize;

    for (as_idx, spec) in roster.iter().enumerate() {
        b.build_as(as_idx as u16, spec, total_hetero);
    }

    b.net.set_faults(b.cfg.faults);
    let pop_routers = b.pop_lhs.into_iter().collect();
    Scenario {
        network: b.net,
        truth: b.truth,
        config: b.cfg,
        pop_routers,
    }
}

/// Derive a deterministic dynamics schedule for a built scenario: each
/// ordinary (non-sub-allocation) PoP independently draws whether it is
/// perturbed — with probability `rate` — and if so which event class hits
/// it and at which epoch. The result is a pure function of
/// `(scenario seed, rate, period)`: the same scenario always evolves the
/// same way, which is what lets a resumed or sharded run replay the
/// schedule exactly from journal metadata.
///
/// Artifact aliases need no fresh address space: an address-reuse cycle
/// reuses the PoP's aggregation-router address (genuinely upstream on the
/// path), and a false diamond misattributes to a sibling last-hop — or,
/// for single-last-hop PoPs, to the aggregation router.
pub fn derive_dynamics(scenario: &Scenario, rate: f64, period: u64) -> DynamicsConfig {
    let seed = scenario.config.seed;
    let mut events = Vec::new();
    if rate > 0.0 && period > 0 {
        for (&pop, (agg, lhs)) in &scenario.pop_routers {
            let truth = &scenario.truth.pops[pop as usize];
            if truth.sub_allocation || lhs.is_empty() {
                continue;
            }
            if unit_f64(mix3(seed ^ 0xD7A0, pop as u64, 0)) >= rate {
                continue;
            }
            let kind = pick(mix3(seed ^ 0xD7A1, pop as u64, 1), 5);
            let at_epoch = 1 + pick(mix3(seed ^ 0xD7A2, pop as u64, 2), 4) as u32;
            let agg_addr = scenario.network.router(*agg).addr;
            events.push(match kind {
                0 => DynamicsEvent::NextHopRewrite {
                    router: *agg,
                    at_epoch,
                },
                1 => DynamicsEvent::LbResize {
                    router: *agg,
                    at_epoch,
                    width: 1 + pick(mix3(seed ^ 0xD7A3, pop as u64, 3), lhs.len()) as u8,
                },
                2 => DynamicsEvent::TransientLoop {
                    router: *agg,
                    at_epoch,
                },
                3 => DynamicsEvent::AddressReuse {
                    router: lhs[0],
                    at_epoch,
                    alias: agg_addr,
                },
                _ => DynamicsEvent::FalseDiamond {
                    router: lhs[0],
                    at_epoch,
                    alias: if lhs.len() > 1 {
                        scenario.network.router(lhs[1]).addr
                    } else {
                        agg_addr
                    },
                },
            });
        }
    }
    DynamicsConfig {
        period,
        events,
        netem: None,
    }
}

impl Builder {
    /// Build one AS subtree: border, intra routers, PoPs, allocations.
    fn build_as(&mut self, as_idx: u16, spec: &AsSpec, total_hetero_budget: usize) {
        let border = self.add_infra_router();
        if unit_f64(mix2(self.cfg.seed ^ 0xB0D, border.0 as u64)) < self.cfg.alt_interface_frac {
            let alt = self.infra_addr();
            self.net.router_mut(border).alt_addr = Some(alt);
        }
        let intra: Vec<RouterId> = (0..self.cfg.intra_fan)
            .map(|_| self.add_infra_router())
            .collect();
        for &r in &intra {
            if unit_f64(mix2(self.cfg.seed ^ 0xA17, r.0 as u64)) < self.cfg.alt_interface_frac {
                let alt = self.infra_addr();
                self.net.router_mut(r).alt_addr = Some(alt);
            }
        }
        if self.rng.gen::<f64>() < self.cfg.rate_limit_frac {
            self.net.router_mut(border).icmp_loss = 0.15;
        }

        let n_blocks = ((self.cfg.target_blocks as f64) * spec.block_share)
            .round()
            .max(0.0) as usize;
        // Hetero budget for this AS, from its Table-3 share.
        let n_hetero = ((total_hetero_budget as f64) * spec.hetero_share
            / self
                .truth
                .as_list
                .iter()
                .map(|a| a.hetero_share)
                .sum::<f64>()
                .max(1e-9))
        .round() as usize;
        let n_hetero = n_hetero.min(n_blocks / 2);

        // --- Big sites first (Table 5). ---
        for site in &spec.big_sites {
            let size = ((site.size_24s as f64) * self.cfg.big_block_scale).round() as usize;
            let size = size.max(2);
            let fan = 2 + (self.rng.gen::<f64>() * 2.0) as usize; // 2..=3
            let (pop, agg) = self.create_pop(
                as_idx,
                site.region.to_string(),
                fan,
                site.cellular,
                true,
                false,
                true, // big sites have responsive infrastructure
            );
            self.wire_pop_upstream(
                border,
                &intra,
                agg,
                pop,
                size as u32,
                spec,
                site.cellular,
                true,
            );
        }

        // --- Ordinary PoPs. ---
        let mut remaining = n_blocks;
        let mut hetero_left = n_hetero;
        let mut city_counter = 0u32;
        while remaining > 0 {
            let pop_size = self.draw_pop_size(spec).min(remaining as u32);
            let fan = self.draw_lh_fan();
            let unresponsive = self.rng.gen::<f64>() < self.cfg.unresponsive_pop_frac;
            city_counter += 1;
            let region = format!("{}-{}", spec.country.to_lowercase(), city_counter);
            let (pop, agg) = self.create_pop(
                as_idx,
                region.clone(),
                fan,
                spec.cellular,
                false,
                false,
                !unresponsive,
            );
            let blocks = self.wire_pop_upstream(
                border,
                &intra,
                agg,
                pop,
                pop_size,
                spec,
                spec.cellular,
                false,
            );
            remaining = remaining.saturating_sub(pop_size as usize);

            // Split some of this PoP's blocks into heterogeneous customers.
            if hetero_left > 0 && spec.hetero_share > 0.0 {
                let split_here = ((pop_size as usize).min(hetero_left) as f64
                    * self.rng.gen_range(0.3..0.9)) as usize;
                let candidates: Vec<Block24> = blocks.iter().copied().take(split_here).collect();
                for blk in candidates {
                    self.make_heterogeneous(as_idx, spec, border, &intra, blk, &region);
                    hetero_left -= 1;
                    if hetero_left == 0 {
                        break;
                    }
                }
            }
        }
    }

    /// Draw an ordinary PoP's size in /24s (zipf-ish, mostly small).
    fn draw_pop_size(&mut self, spec: &AsSpec) -> u32 {
        let u = self.rng.gen::<f64>();
        let max = match spec.org_type {
            OrgType::Hosting | OrgType::HostingCloud => 64.0,
            // Cable/fixed ISPs concentrate whole metros behind one
            // head-end: a few giant PoPs among many small ones.
            OrgType::FixedIsp => 48.0,
            OrgType::Broadband => 16.0,
            OrgType::MobileIsp => 32.0,
            OrgType::Enterprise => 8.0,
        };
        // Inverse-power draw: most PoPs are 1-4 blocks, a few are large.
        let size = (1.0 / (1.0 - u * 0.97)).powf(1.4);
        (size.min(max) as u32).max(1)
    }

    /// Allocate a PoP's blocks as 1-4 runs, wire routes through the AS, set
    /// host profiles, and record truth. Returns the allocated blocks.
    #[allow(clippy::too_many_arguments)]
    fn wire_pop_upstream(
        &mut self,
        border: RouterId,
        intra: &[RouterId],
        agg: RouterId,
        pop: u32,
        size: u32,
        spec: &AsSpec,
        cellular: bool,
        big_site: bool,
    ) -> Vec<Block24> {
        let as_idx = self.truth.pops[pop as usize].as_idx;
        // Choose run layout: big sites split into many runs (and may span
        // slabs); ordinary pops use 1-2 runs.
        let mut run_sizes: Vec<u32> = Vec::new();
        let mut left = size;
        while left > 0 {
            // Allocations accrete over time from whatever pool has space,
            // so even small PoPs hold several runs.
            let r = if big_site {
                self.rng.gen_range(48..=384u32).min(left)
            } else if left > 2 {
                self.rng.gen_range(1..=left.min(8))
            } else {
                left
            };
            run_sizes.push(r);
            left -= r;
        }

        let mut as_alloc = self.as_allocs.remove(&as_idx).unwrap_or_else(AsAlloc::new);
        let mut blocks = Vec::with_capacity(size as usize);
        let before = as_alloc.announced.len();
        let mut run_prefixes: Vec<Prefix> = Vec::new();
        for (i, &rs) in run_sizes.iter().enumerate() {
            let gap = self.rng.gen_range(1..12);
            // Operators allocate from several distant supernets: runs after
            // the first often land in a fresh slab, producing the far-apart
            // contiguous segments of Figures 7b/8 (~40% of aggregates span
            // nearly unrelated prefixes).
            let force_new = i > 0 && self.rng.gen_bool(if big_site { 0.6 } else { 0.5 });
            let (start, prefixes) = as_alloc.alloc_run(rs, gap, force_new, &mut self.slabs);
            for off in 0..rs {
                blocks.push(Block24(start.0 + off));
            }
            run_prefixes.extend(prefixes);
        }
        let new_announcements: Vec<Prefix> = as_alloc.announced[before..].to_vec();
        self.as_allocs.insert(as_idx, as_alloc);

        // Announce any new slabs to the backbone.
        for p in new_announcements {
            self.announce(p, border);
        }
        // Wire each covering prefix: border → per-flow intra → agg → pop.
        for p in run_prefixes {
            // Second per-destination stage: some border routers hash the
            // source too (Cisco CEF, paper §6.1); a rare few spray per
            // packet.
            let as_h = mix2(self.cfg.seed ^ 0xBAD, as_idx as u64);
            let policy = if unit_f64(as_h) < self.cfg.per_packet_frac {
                LbPolicy::PerPacket
            } else if pop.is_multiple_of(2) {
                LbPolicy::PerDestination
            } else {
                LbPolicy::PerSrcDest
            };
            self.net.install_route(
                border,
                p,
                NextHopGroup::ecmp(intra.iter().map(|&r| NextHop::Router(r)).collect(), policy),
            );
            for &r in intra {
                self.net
                    .install_route(r, p, NextHopGroup::single(NextHop::Router(agg)));
            }
            self.serve_prefix(pop, p);
        }

        // Host profiles + block truth.
        let base_rtt =
            (country_base_rtt_us(spec.country) as f64 * self.rng.gen_range(0.7..1.3)) as u32;
        for &blk in &blocks {
            let profile = self.draw_profile(spec, cellular, big_site, base_rtt);
            self.net.set_block_profile(blk, profile);
            self.truth.blocks.insert(
                blk,
                BlockTruth {
                    as_idx,
                    homogeneous: true,
                    pop,
                    sub_blocks: Vec::new(),
                },
            );
        }
        blocks
    }

    /// Draw a /24 host profile.
    fn draw_profile(
        &mut self,
        spec: &AsSpec,
        cellular: bool,
        big_site: bool,
        base_rtt: u32,
    ) -> HostProfile {
        let kind = if cellular {
            HostKind::Cellular
        } else {
            match spec.org_type {
                OrgType::Hosting | OrgType::HostingCloud => HostKind::Server,
                OrgType::Enterprise => HostKind::Enterprise,
                _ => HostKind::Residential,
            }
        };
        // Density classes; weights differ by org type. Sparse blocks drive
        // the paper's 24.9% "too few active" row.
        let (w_dead, w_sparse, w_med) = match spec.org_type {
            OrgType::Hosting | OrgType::HostingCloud => (0.04, 0.22, 0.34),
            OrgType::Enterprise => (0.12, 0.42, 0.26),
            _ => (0.08, 0.40, 0.32),
        };
        let u = self.rng.gen::<f64>();
        let quiet_prob = if big_site {
            self.cfg.quiet_prob * 0.7
        } else {
            self.cfg.quiet_prob
        };
        // Densities are calibrated to the paper's reality: 54.05M responsive
        // of 64.45M probed destinations over 3.37M blocks ≈ 16 active
        // addresses per /24 on average. Sparse blocks are the norm.
        let density = if big_site {
            self.rng.gen_range(0.08..0.35)
        } else if u < w_dead {
            self.rng.gen_range(0.004..0.015)
        } else if u < w_dead + w_sparse {
            // Marginal blocks: enough actives to pass ZMap selection but
            // fragile to churn and to the confidence table's demands —
            // the paper's 24.9% "too few active" row.
            self.rng.gen_range(0.014..0.048)
        } else if u < w_dead + w_sparse + w_med {
            self.rng.gen_range(0.05..0.16)
        } else {
            self.rng.gen_range(0.16..0.45)
        };
        let ttl_mix = match spec.org_type {
            OrgType::Hosting | OrgType::HostingCloud => {
                if self.rng.gen_bool(0.5) {
                    TtlMix::Unix
                } else {
                    TtlMix::Mixed
                }
            }
            _ => {
                if self.rng.gen_bool(0.1) {
                    TtlMix::MixedWithCustom
                } else {
                    TtlMix::Mixed
                }
            }
        };
        HostProfile {
            density: density as f32,
            churn: self.cfg.churn,
            ttl_mix,
            kind,
            base_rtt_us: base_rtt,
            quiet_prob,
        }
    }

    /// Split an already-allocated homogeneous block into Table-2 style
    /// customer sub-allocations, each behind its own last-hop router.
    fn make_heterogeneous(
        &mut self,
        as_idx: u16,
        spec: &AsSpec,
        _border: RouterId,
        _intra: &[RouterId],
        blk: Block24,
        region: &str,
    ) {
        // Draw a composition from the Table 2 distribution.
        let u = self.rng.gen::<f64>();
        let mut acc = 0.0;
        let mut comp: &[u8] = HETERO_COMPOSITIONS[0].0;
        for &(lens, share) in HETERO_COMPOSITIONS {
            acc += share;
            if u < acc {
                comp = lens;
                break;
            }
        }
        let subs = tile_composition(blk, comp);

        // Upstream routing (border → intra → agg) already covers the /24;
        // we refine at the serving PoP's agg router with longer prefixes.
        let parent_pop = self.truth.blocks[&blk].pop;
        let (agg, _) = self.pop_lhs[&parent_pop].clone();

        let mut sub_entries = Vec::with_capacity(subs.len());
        for (i, &sub) in subs.iter().enumerate() {
            // Dedicated customer last-hop router (single: route entries for
            // distinct customers are not load balanced together).
            let lh = self.add_infra_router();
            let lh_addr = self.net.router(lh).addr;
            let sub_pop = self.truth.pops.len() as u32;
            self.truth.pops.push(PopTruth {
                id: sub_pop,
                as_idx,
                region: format!("{region}-cust{i}"),
                lasthop_addrs: vec![lh_addr],
                responsive: true,
                cellular: false,
                big_site: false,
                sub_allocation: true,
                lasthop_policy: LbPolicy::PerDestination,
            });
            self.pop_lhs.insert(sub_pop, (agg, vec![lh]));
            self.net
                .install_route(agg, sub, NextHopGroup::single(NextHop::Router(lh)));
            self.net
                .install_route(lh, sub, NextHopGroup::single(NextHop::Deliver));
            sub_entries.push((sub, sub_pop));
        }

        // Customers are distinct organizations: denser, varied profiles.
        let base_rtt =
            (country_base_rtt_us(spec.country) as f64 * self.rng.gen_range(0.7..1.3)) as u32;
        self.net.set_block_profile(
            blk,
            HostProfile {
                density: self.rng.gen_range(0.08..0.35),
                churn: self.cfg.churn,
                ttl_mix: TtlMix::Mixed,
                kind: HostKind::Enterprise,
                base_rtt_us: base_rtt,
                quiet_prob: self.cfg.quiet_prob * 0.5,
            },
        );

        let entry = self.truth.blocks.get_mut(&blk).expect("block allocated");
        entry.homogeneous = false;
        entry.sub_blocks = sub_entries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_dynamics_is_a_pure_function_of_seed_rate_period() {
        let s = build(ScenarioConfig::tiny(77));
        let a = derive_dynamics(&s, 0.5, 32);
        let b = derive_dynamics(&s, 0.5, 32);
        assert_eq!(a, b, "same inputs, same schedule");
        assert_eq!(a.period, 32);
        assert!(!a.events.is_empty(), "rate 0.5 over many pops hits some");
        let c = derive_dynamics(&s, 0.1, 32);
        assert_ne!(a.events, c.events, "rate changes the draw outcome");
    }

    #[test]
    fn derived_dynamics_rate_zero_is_empty() {
        let s = build(ScenarioConfig::tiny(78));
        let d = derive_dynamics(&s, 0.0, 32);
        assert!(d.events.is_empty());
        assert!(!d.events_active());
        // Zero period likewise disables the schedule outright.
        assert!(derive_dynamics(&s, 1.0, 0).events.is_empty());
    }

    #[test]
    fn derived_events_target_pop_routers_at_future_epochs() {
        let s = build(ScenarioConfig::tiny(79));
        let d = derive_dynamics(&s, 1.0, 16);
        assert!(!d.events.is_empty());
        for ev in &d.events {
            assert!(ev.at_epoch() >= 1, "epoch 0 is the frozen snapshot");
            assert!(ev.at_epoch() <= 4);
            let r = ev.router();
            let in_some_pop = s
                .pop_routers
                .values()
                .any(|(agg, lhs)| *agg == r || lhs.contains(&r));
            assert!(in_some_pop, "event router {r:?} is not a PoP router");
        }
        // At rate 1.0 every ordinary PoP is perturbed exactly once.
        let ordinary = s
            .pop_routers
            .keys()
            .filter(|&&p| !s.truth.pops[p as usize].sub_allocation)
            .count();
        assert_eq!(d.events.len(), ordinary);
    }

    #[test]
    fn run_to_prefixes_covers_exactly() {
        for (start, len) in [
            (0x040001u32, 5u32),
            (0x040000, 16),
            (0x05FFFF, 3),
            (0x040400, 1),
        ] {
            let prefixes = run_to_prefixes(Block24(start), len);
            let mut covered: Vec<u32> = prefixes
                .iter()
                .flat_map(|p| p.blocks24().map(|b| b.0))
                .collect();
            covered.sort_unstable();
            let expect: Vec<u32> = (start..start + len).collect();
            assert_eq!(covered, expect, "start={start:#x} len={len}");
        }
    }

    #[test]
    fn tile_composition_tiles_exactly() {
        let blk = Block24(0x040000);
        for &(lens, _) in HETERO_COMPOSITIONS {
            let subs = tile_composition(blk, lens);
            assert_eq!(subs.len(), lens.len());
            let total: u32 = subs.iter().map(|p| p.size()).sum();
            assert_eq!(total, 256, "composition {lens:?}");
            // No overlaps.
            for i in 0..subs.len() {
                for j in 0..i {
                    assert!(
                        !subs[i].overlaps(subs[j]),
                        "{lens:?}: {} vs {}",
                        subs[i],
                        subs[j]
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_scenario_builds() {
        let s = build(ScenarioConfig::tiny(42));
        assert!(!s.truth.blocks.is_empty());
        assert!(s.network.router_count() > 10);
        // Every allocated block has both a profile and a truth entry.
        for b in s.network.allocated_blocks() {
            assert!(s.truth.blocks.contains_key(&b), "{b} missing truth");
        }
    }

    #[test]
    fn scenario_is_deterministic() {
        let a = build(ScenarioConfig::tiny(7));
        let b = build(ScenarioConfig::tiny(7));
        assert_eq!(a.network.router_count(), b.network.router_count());
        assert_eq!(
            a.truth.blocks.keys().collect::<Vec<_>>(),
            b.truth.blocks.keys().collect::<Vec<_>>()
        );
        let c = build(ScenarioConfig::tiny(8));
        assert_ne!(
            a.truth.blocks.keys().collect::<Vec<_>>(),
            c.truth.blocks.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn heterogeneous_blocks_have_valid_compositions() {
        let s = build(ScenarioConfig::small(42));
        let mut n_hetero = 0;
        for (&blk, t) in &s.truth.blocks {
            if t.homogeneous {
                continue;
            }
            n_hetero += 1;
            let total: u32 = t.sub_blocks.iter().map(|(p, _)| p.size()).sum();
            assert_eq!(total, 256, "sub-blocks of {blk} must tile");
            // Every sub-block's pop must be a sub-allocation with one LH.
            for &(_, pop) in &t.sub_blocks {
                let pt = &s.truth.pops[pop as usize];
                assert!(pt.sub_allocation);
                assert_eq!(pt.lasthop_addrs.len(), 1);
            }
        }
        assert!(n_hetero > 0, "scenario should contain heterogeneous blocks");
    }

    #[test]
    fn ground_truth_lasthops_match_forwarding() {
        // The router set the forwarding engine can reach must equal the
        // PoP's recorded last-hop set.
        let s = build(ScenarioConfig::tiny(42));
        let mut checked = 0;
        for (&blk, t) in s.truth.blocks.iter().take(40) {
            if !t.homogeneous {
                continue;
            }
            let pop = &s.truth.pops[t.pop as usize];
            let dst = blk.addr(10);
            let lasthops = s.network.true_lasthop_set(dst);
            let addrs: Vec<Addr> = lasthops
                .iter()
                .map(|&id| s.network.router(id).addr)
                .collect();
            let mut expect = pop.lasthop_addrs.clone();
            expect.sort();
            let mut got = addrs;
            got.sort();
            assert_eq!(got, expect, "block {blk}");
            checked += 1;
        }
        assert!(checked > 5);
    }

    #[test]
    fn big_sites_present_at_scale() {
        let mut cfg = ScenarioConfig::small(42);
        cfg.big_block_scale = 0.1;
        let s = build(cfg);
        let big_pops: Vec<&PopTruth> = s.truth.pops.iter().filter(|p| p.big_site).collect();
        assert_eq!(big_pops.len(), 15, "fifteen Table 5 sites");
        for p in big_pops {
            let n = s
                .truth
                .blocks
                .values()
                .filter(|b| b.homogeneous && b.pop == p.id)
                .count();
            assert!(n >= 2, "site {} has {n} blocks", p.region);
        }
    }

    #[test]
    fn extra_vantages_are_probe_able_and_see_different_srcdest_paths() {
        let mut cfg = ScenarioConfig::tiny(42);
        cfg.extra_vantages = 1;
        let s = build(cfg);
        let vantages = s.network.vantages();
        assert_eq!(vantages.len(), 2);
        let net = s.network.clone();
        // A PerSrcDest PoP resolves to different last-hops per vantage for
        // at least some destinations; per-destination PoPs agree.
        let mut diff = 0;
        let mut total = 0;
        for (&blk, t) in s.truth.blocks.iter() {
            if !t.homogeneous {
                continue;
            }
            let pop = &s.truth.pops[t.pop as usize];
            if pop.lasthop_addrs.len() < 2 || !pop.responsive {
                continue;
            }
            for host in [10u8, 77, 200] {
                let dst = blk.addr(host);
                let mut last = Vec::new();
                for &src in &vantages {
                    // TTL that expires at the last-hop layer (depth 8; the
                    // extra vantage has the same depth by construction).
                    let p = crate::forward::encode_probe(src, dst, 8, 2, host as u16, 7, 0);
                    let d = net.send(p).unwrap();
                    if let Some(resp) = d.response {
                        let mut buf = resp;
                        let h = crate::wire::Ipv4Header::decode(&mut buf).unwrap();
                        last.push(h.src);
                    }
                }
                if last.len() == 2 {
                    total += 1;
                    if last[0] != last[1] {
                        diff += 1;
                    }
                }
            }
            if total > 150 {
                break;
            }
        }
        assert!(total > 30, "need comparable probes, got {total}");
        assert!(
            diff > 0,
            "source-hashing balancers should differ per vantage"
        );
        assert!(diff < total, "per-destination balancers should agree");
    }

    #[test]
    fn colocated_with_returns_whole_pop() {
        let s = build(ScenarioConfig::tiny(42));
        let (&blk, t) = s.truth.blocks.iter().find(|(_, t)| t.homogeneous).unwrap();
        let group = s.truth.colocated_with(blk);
        assert!(group.contains(&blk));
        for g in &group {
            assert_eq!(s.truth.blocks[g].pop, t.pop);
        }
    }
}
