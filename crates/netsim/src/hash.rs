//! Deterministic, seedable hashing used across the simulator.
//!
//! Every stochastic decision in the simulated internet (ECMP next-hop
//! choice, which addresses host a machine, churn, jitter) is a pure function
//! of a seed and the decision's inputs. That makes whole-scenario runs
//! reproducible bit-for-bit regardless of probing order, which the
//! experiment harness relies on.

/// A 64-bit mixing function (SplitMix64 finalizer). Good avalanche, cheap.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine two 64-bit values into one hash.
#[inline]
pub fn mix2(a: u64, b: u64) -> u64 {
    mix64(a ^ mix64(b))
}

/// Combine three 64-bit values into one hash.
#[inline]
pub fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix64(a ^ mix64(b ^ mix64(c)))
}

/// A uniform f64 in [0, 1) derived from a hash value.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // 53 mantissa bits of uniformity.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Pick an index in `0..n` from a hash value.
///
/// Uses the widening-multiply trick rather than `%` so that all of the hash's
/// entropy participates and there is no modulo bias.
#[inline]
pub fn pick(h: u64, n: usize) -> usize {
    debug_assert!(n > 0);
    (((h as u128) * (n as u128)) >> 64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix64(12345), mix64(12345));
        assert_ne!(mix64(12345), mix64(12346));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn pick_in_range_and_roughly_uniform() {
        let n = 7;
        let mut counts = [0usize; 7];
        for i in 0..70_000u64 {
            counts[pick(mix64(i), n)] += 1;
        }
        for &c in &counts {
            // Each bucket should get about 10k draws.
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn pick_single_bucket() {
        assert_eq!(pick(u64::MAX, 1), 0);
        assert_eq!(pick(0, 1), 0);
    }
}
