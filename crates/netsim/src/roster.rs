//! The cast of autonomous systems in the default scenarios.
//!
//! Names, countries, and proportions are modeled on the paper's Table 3
//! (top ASes by heterogeneous /24 count — Korea Telecom and SK Broadband
//! alone hold ~60%) and Table 5 (top 15 largest homogeneous blocks —
//! hosting/cloud datacenters and cellular carriers behind few ingress
//! points). The synthetic internet reproduces those allocation patterns so
//! the aggregation experiments can reproduce the corresponding tables.

use serde::{Deserialize, Serialize};

/// Organization category, as the paper assigns them from operator websites.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OrgType {
    /// ISP providing both fixed and mobile broadband.
    Broadband,
    /// Fixed-line-only ISP.
    FixedIsp,
    /// Mobile-only carrier.
    MobileIsp,
    /// Hosting company.
    Hosting,
    /// Hosting company marketing cloud services.
    HostingCloud,
    /// Enterprise network.
    Enterprise,
}

impl OrgType {
    /// Label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            OrgType::Broadband => "Broadband ISP",
            OrgType::FixedIsp => "Fixed ISP",
            OrgType::MobileIsp => "Mobile ISP",
            OrgType::Hosting => "Hosting",
            OrgType::HostingCloud => "Hosting/Cloud",
            OrgType::Enterprise => "Enterprise",
        }
    }
}

/// rDNS naming scheme family used for the AS's customer addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum RdnsScheme {
    /// No reverse DNS.
    None,
    /// `mNN-ip-D.cust.<domain>` — the Tele2-style cellular pattern the paper
    /// generalizes in Section 7.2.
    CellCust,
    /// `<city>-omed-D.<domain>` — OCN-style pattern with the `omed` keyword.
    Omed,
    /// `ec2-A-B-C-D.<region>.compute.<domain>` — cloud instance names.
    Ec2,
    /// `wsip-A-B-C-D.<city>.<domain>` — business/datacenter fixed ISP.
    Wsip,
    /// `ip-A-B-C-D.<domain>` — generic residential.
    GenericIp,
    /// Multi-pattern residential cable scheme (Road Runner-like): the
    /// pattern encodes host type, which the sampling experiment (Fig 12)
    /// counts.
    CableMulti,
}

/// One large, named colocation site (reproduces a Table 5 row).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BigSite {
    /// Number of /24 blocks colocated at the site before scaling.
    pub size_24s: usize,
    /// Region tag used in rDNS (e.g. `us-west-1`) and geo city.
    pub region: &'static str,
    /// Whether the site is a cellular ingress point (Figure 6 behaviour).
    pub cellular: bool,
}

/// Specification of one autonomous system in the scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AsSpec {
    /// Autonomous system number.
    pub asn: u32,
    /// Organization name.
    pub name: &'static str,
    /// Country the allocations geolocate to.
    pub country: &'static str,
    /// Organization category.
    pub org_type: OrgType,
    /// rDNS naming family.
    pub rdns: RdnsScheme,
    /// DNS domain used in rDNS names.
    pub domain: &'static str,
    /// Share of the scenario's ordinary (non-big-site) /24 blocks.
    pub block_share: f64,
    /// Share of the scenario's heterogeneous (split) /24 blocks.
    /// Proportions follow Table 3.
    pub hetero_share: f64,
    /// Giant homogeneous colocation sites (Table 5 rows), if any.
    pub big_sites: Vec<BigSite>,
    /// Whether ordinary pops of this AS serve cellular devices.
    pub cellular: bool,
}

/// The fixed roster used by paper-scale scenarios.
///
/// `hetero_share` values follow the Table 3 counts (KT 8207, SK 1798,
/// SFR 499, TDC 486, TM Net 242, Telenor 172, ColoCrossing 125,
/// Caucasus 115, Magticom 108, IRIS 106, remainder spread thin).
pub fn paper_roster() -> Vec<AsSpec> {
    let mut roster = vec![
        AsSpec {
            asn: 4766,
            name: "Korea Telecom",
            country: "Korea",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::None,
            domain: "kornet.net",
            block_share: 0.10,
            hetero_share: 0.4722, // 8207 / 17387
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 9318,
            name: "SK Broadband",
            country: "Korea",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::None,
            domain: "skbroadband.com",
            block_share: 0.05,
            hetero_share: 0.1034, // 1798 / 17387
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 15557,
            name: "SFR",
            country: "France",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "sfr.net",
            block_share: 0.05,
            hetero_share: 0.0287,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 3292,
            name: "TDC A/S",
            country: "Denmark",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "tdc.dk",
            block_share: 0.04,
            hetero_share: 0.0280,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 4788,
            name: "TM Net",
            country: "Malaysia",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "tm.net.my",
            block_share: 0.03,
            hetero_share: 0.0139,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 9158,
            name: "Telenor A/S",
            country: "Denmark",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "telenor.dk",
            block_share: 0.03,
            hetero_share: 0.0099,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 36352,
            name: "ColoCrossing",
            country: "US",
            org_type: OrgType::Hosting,
            rdns: RdnsScheme::Wsip,
            domain: "colocrossing.com",
            block_share: 0.02,
            hetero_share: 0.0072,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 28751,
            name: "Caucasus Online",
            country: "Georgia",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "caucasus.net",
            block_share: 0.015,
            hetero_share: 0.0066,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 20751,
            name: "Magticom",
            country: "Georgia",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "magti.ge",
            block_share: 0.015,
            hetero_share: 0.0062,
            big_sites: vec![],
            cellular: false,
        },
        AsSpec {
            asn: 35632,
            name: "IRIS 64",
            country: "France",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "iris64.fr",
            block_share: 0.015,
            hetero_share: 0.0061,
            big_sites: vec![],
            cellular: false,
        },
        // ---- Table 5: owners of the biggest homogeneous blocks ----
        AsSpec {
            asn: 18779,
            name: "EGI Hosting",
            country: "US",
            org_type: OrgType::Hosting,
            rdns: RdnsScheme::Wsip,
            domain: "egihosting.com",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 1251,
                region: "san-jose",
                cellular: false,
            }],
            cellular: false,
        },
        AsSpec {
            asn: 1257,
            name: "Tele2",
            country: "Sweden",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::CellCust,
            domain: "tele2.net",
            block_share: 0.02,
            hetero_share: 0.0,
            big_sites: vec![
                BigSite {
                    size_24s: 1187,
                    region: "stockholm",
                    cellular: true,
                },
                BigSite {
                    size_24s: 857,
                    region: "gothenburg",
                    cellular: true,
                },
            ],
            cellular: true,
        },
        AsSpec {
            asn: 16509,
            name: "Amazon",
            country: "Japan",
            org_type: OrgType::HostingCloud,
            rdns: RdnsScheme::Ec2,
            domain: "amazonaws.com",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![
                BigSite {
                    size_24s: 1122,
                    region: "ap-northeast-1",
                    cellular: false,
                },
                BigSite {
                    size_24s: 835,
                    region: "us-west-1",
                    cellular: false,
                },
            ],
            cellular: false,
        },
        AsSpec {
            asn: 2914,
            name: "NTT America",
            country: "US",
            org_type: OrgType::HostingCloud,
            rdns: RdnsScheme::Wsip,
            domain: "ntt.net",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 1071,
                region: "dallas",
                cellular: false,
            }],
            cellular: false,
        },
        AsSpec {
            asn: 32392,
            name: "OPENTRANSFER",
            country: "US",
            org_type: OrgType::Hosting,
            rdns: RdnsScheme::Wsip,
            domain: "opentransfer.com",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![
                BigSite {
                    size_24s: 940,
                    region: "chicago",
                    cellular: false,
                },
                BigSite {
                    size_24s: 698,
                    region: "atlanta",
                    cellular: false,
                },
            ],
            cellular: false,
        },
        AsSpec {
            asn: 4713,
            name: "OCN",
            country: "Japan",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::Omed,
            domain: "ocn.ne.jp",
            block_share: 0.02,
            hetero_share: 0.0,
            big_sites: vec![
                BigSite {
                    size_24s: 840,
                    region: "tokyo",
                    cellular: true,
                },
                BigSite {
                    size_24s: 783,
                    region: "osaka",
                    cellular: true,
                },
            ],
            cellular: true,
        },
        AsSpec {
            asn: 9506,
            name: "SingTel",
            country: "Singapore",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "singtel.com",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 732,
                region: "singapore",
                cellular: false, // datacenter per Section 5.2's RTT analysis
            }],
            cellular: false,
        },
        AsSpec {
            asn: 17676,
            name: "SoftBank",
            country: "Japan",
            org_type: OrgType::Broadband,
            rdns: RdnsScheme::GenericIp,
            domain: "softbank.jp",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 731,
                region: "tokyo",
                cellular: false, // datacenter per Section 5.2
            }],
            cellular: false,
        },
        AsSpec {
            asn: 26496,
            name: "GoDaddy",
            country: "US",
            org_type: OrgType::Hosting,
            rdns: RdnsScheme::Wsip,
            domain: "godaddy.com",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 703,
                region: "phoenix",
                cellular: false,
            }],
            cellular: false,
        },
        AsSpec {
            asn: 22394,
            name: "Verizon Wireless",
            country: "US",
            org_type: OrgType::MobileIsp,
            rdns: RdnsScheme::CellCust,
            domain: "myvzw.com",
            block_share: 0.01,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 699,
                region: "newark",
                cellular: true,
            }],
            cellular: true,
        },
        AsSpec {
            asn: 22773,
            name: "Cox",
            country: "US",
            org_type: OrgType::FixedIsp,
            rdns: RdnsScheme::Wsip,
            domain: "coxbusiness.com",
            block_share: 0.02,
            hetero_share: 0.0,
            big_sites: vec![BigSite {
                size_24s: 679,
                region: "phoenix",
                cellular: false,
            }],
            cellular: false,
        },
        // ---- The sampling experiment's cable ISP (Fig 12) ----
        AsSpec {
            asn: 20001,
            name: "Road Runner Cable",
            country: "US",
            org_type: OrgType::FixedIsp,
            rdns: RdnsScheme::CableMulti,
            domain: "res.rr.com",
            block_share: 0.06,
            hetero_share: 0.0,
            big_sites: vec![],
            cellular: false,
        },
    ];

    // Filler broadband / enterprise ASes to spread the remaining blocks.
    const FILLERS: &[(&str, &str, u32, OrgType)] = &[
        ("Deutsche Kabel", "Germany", 61001, OrgType::Broadband),
        ("Iberia Net", "Spain", 61002, OrgType::Broadband),
        ("Aurora Telecom", "Brazil", 61003, OrgType::Broadband),
        ("Southern Cross ISP", "Australia", 61004, OrgType::Broadband),
        ("Maple Broadband", "Canada", 61005, OrgType::Broadband),
        ("Thames Online", "UK", 61006, OrgType::Broadband),
        ("Ganges Net", "India", 61007, OrgType::Broadband),
        ("Pacifica Hosting", "US", 61008, OrgType::Hosting),
        (
            "Alpine Enterprise Net",
            "Switzerland",
            61009,
            OrgType::Enterprise,
        ),
        (
            "Baltic University Net",
            "Estonia",
            61010,
            OrgType::Enterprise,
        ),
        ("Sahara Wireless", "Egypt", 61011, OrgType::MobileIsp),
        ("Andes Cable", "Chile", 61012, OrgType::FixedIsp),
    ];
    let n_fillers = FILLERS.len();
    let spoken_for: f64 = roster.iter().map(|a| a.block_share).sum();
    let remaining = (1.0 - spoken_for).max(0.0);
    for &(name, country, asn, org_type) in FILLERS {
        roster.push(AsSpec {
            asn,
            name,
            country,
            org_type,
            rdns: if org_type == OrgType::MobileIsp {
                RdnsScheme::CellCust
            } else {
                RdnsScheme::GenericIp
            },
            domain: "example.net",
            block_share: remaining / n_fillers as f64,
            hetero_share: 0.0,
            big_sites: vec![],
            cellular: org_type == OrgType::MobileIsp,
        });
    }
    // Residual hetero share (beyond the Table 3 top 10) goes to the two
    // Korea ASes proportionally, matching the paper's "top 2 hold ~60%".
    roster
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_are_sane() {
        let roster = paper_roster();
        let blocks: f64 = roster.iter().map(|a| a.block_share).sum();
        assert!(
            (0.99..=1.01).contains(&blocks),
            "block shares sum to {blocks}"
        );
        let hetero: f64 = roster.iter().map(|a| a.hetero_share).sum();
        assert!(hetero < 1.0);
        assert!(hetero > 0.6, "top ASes should hold most hetero blocks");
    }

    #[test]
    fn korea_dominates_hetero() {
        let roster = paper_roster();
        let korea: f64 = roster
            .iter()
            .filter(|a| a.country == "Korea")
            .map(|a| a.hetero_share)
            .sum();
        assert!(korea > 0.5, "Korea share {korea}");
    }

    #[test]
    fn big_sites_match_table5() {
        let roster = paper_roster();
        let mut sizes: Vec<usize> = roster
            .iter()
            .flat_map(|a| a.big_sites.iter().map(|s| s.size_24s))
            .collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(sizes.len(), 15, "fifteen Table 5 rows");
        assert_eq!(sizes[0], 1251);
        assert_eq!(sizes[14], 679);
    }

    #[test]
    fn asns_are_unique() {
        let roster = paper_roster();
        let mut asns: Vec<u32> = roster.iter().map(|a| a.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert_eq!(asns.len(), roster.len());
    }
}
