//! End hosts, modelled as pure functions of per-/24 profiles.
//!
//! Materializing tens of millions of host structs would dominate memory, so
//! hosts are derived on demand: a compact [`HostProfile`] per /24 block plus
//! deterministic hashing decides, for any address, whether a host exists
//! there, whether it responds at a given epoch, its OS default TTL, and its
//! latency personality. This keeps a 100k-/24 scenario in a few megabytes
//! while preserving per-address diversity.

use crate::addr::{Addr, Block24};
use crate::hash::{mix2, mix3, pick, unit_f64};
use serde::{Deserialize, Serialize};

/// What kind of machine lives at an address; drives RTT behaviour and rDNS.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HostKind {
    /// Residential broadband CPE.
    Residential,
    /// Datacenter / hosting server.
    Server,
    /// Cellular device behind a carrier gateway (radio wake-up delays).
    Cellular,
    /// Enterprise or campus machine.
    Enterprise,
}

/// Mix of operating-system default TTLs within a block.
///
/// The paper's hop-count inference (Section 3.4) bins observed reply TTLs at
/// 64/128/192/255; we generate hosts with the commonplace defaults plus a
/// configurable share of oddballs to exercise the halving fallback.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TtlMix {
    /// Unix-likes only (TTL 64).
    Unix,
    /// Windows only (TTL 128).
    Windows,
    /// Network gear (TTL 255).
    Network,
    /// A typical mixture: mostly 64, some 128, rare 255.
    Mixed,
    /// Mixture plus a share of non-standard defaults (e.g. 32, 100) that
    /// break naive hop-count inference.
    MixedWithCustom,
}

/// Per-/24 host population parameters. One per block; ~24 bytes.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HostProfile {
    /// Probability that any given address hosts a responsive machine.
    pub density: f32,
    /// Probability that an address active in the ZMap snapshot is *not*
    /// responsive at probe time (availability churn), and vice versa.
    pub churn: f32,
    /// OS default-TTL mixture.
    pub ttl_mix: TtlMix,
    /// Host kind for RTT modelling and rDNS.
    pub kind: HostKind,
    /// Base one-way latency to the serving PoP, microseconds.
    pub base_rtt_us: u32,
    /// Probability that the whole block is "quiet" at a probe epoch — a
    /// correlated outage/diurnal dip in which most hosts stop answering
    /// (cf. Quan et al., "When the internet sleeps"). This is what makes a
    /// ZMap snapshot stale and drives the paper's 24.9% "too few active"
    /// row.
    pub quiet_prob: f32,
}

impl Default for HostProfile {
    fn default() -> Self {
        HostProfile {
            density: 0.3,
            churn: 0.02,
            ttl_mix: TtlMix::Mixed,
            kind: HostKind::Residential,
            base_rtt_us: 20_000,
            quiet_prob: 0.0,
        }
    }
}

/// A realized host at one address, derived from the profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Host {
    /// The host's address.
    pub addr: Addr,
    /// The OS default TTL its replies start from.
    pub default_ttl: u8,
    /// Host kind.
    pub kind: HostKind,
}

/// Derives hosts from profiles; holds the scenario seed.
#[derive(Clone, Copy, Debug)]
pub struct HostOracle {
    seed: u64,
}

/// Domain-separation tags so each derived property uses an independent
/// hash stream.
const TAG_EXISTS: u64 = 0x01;
const TAG_CHURN: u64 = 0x02;
const TAG_TTL: u64 = 0x03;
const TAG_QUIET: u64 = 0x04;

impl HostOracle {
    /// Create an oracle for a scenario seed.
    pub fn new(seed: u64) -> Self {
        HostOracle { seed }
    }

    /// Whether a (potentially) responsive host exists at `addr`.
    ///
    /// Network (`.0`) and broadcast (`.255`) addresses never host machines.
    pub fn exists(&self, addr: Addr, profile: &HostProfile) -> bool {
        let h = addr.host24();
        if h == 0 || h == 255 {
            return false;
        }
        unit_f64(mix3(self.seed, TAG_EXISTS, addr.0 as u64)) < profile.density as f64
    }

    /// Whether the host at `addr` answers probes at `epoch`.
    ///
    /// Epoch 0 is the ZMap snapshot; later epochs flip each host's state
    /// independently with probability `churn` (availability drift between
    /// the snapshot and the measurement, paper footnote 2), and whole
    /// blocks go "quiet" with probability `quiet_prob` — a correlated dip
    /// in which a large share of the block's hosts stop answering.
    pub fn responsive(&self, addr: Addr, profile: &HostProfile, epoch: u32) -> bool {
        let h = addr.host24();
        if h == 0 || h == 255 {
            // Network/broadcast addresses never answer, churn or not.
            return false;
        }
        let base = self.exists(addr, profile);
        if epoch == 0 {
            return base;
        }
        if profile.quiet_prob > 0.0 {
            let block_h = mix3(self.seed ^ TAG_QUIET, addr.block24().0 as u64, epoch as u64);
            let u = unit_f64(block_h);
            if u < profile.quiet_prob as f64 {
                // Most quiet periods are full outages (power/link events);
                // the rest are partial dips where most hosts still vanish.
                let sub = u / profile.quiet_prob as f64;
                if sub < 0.75 {
                    return false;
                }
                let drop_frac = 0.85 + 0.14 * unit_f64(mix2(block_h, 1));
                if unit_f64(mix3(block_h, addr.0 as u64, 2)) < drop_frac {
                    return false;
                }
            }
        }
        let flip = unit_f64(mix3(self.seed ^ TAG_CHURN, addr.0 as u64, epoch as u64))
            < profile.churn as f64;
        base ^ flip
    }

    /// The host record at `addr`, if a host exists there at all (regardless
    /// of current responsiveness).
    pub fn host(&self, addr: Addr, profile: &HostProfile) -> Option<Host> {
        if !self.exists(addr, profile) {
            return None;
        }
        Some(Host {
            addr,
            default_ttl: self.default_ttl(addr, profile),
            kind: profile.kind,
        })
    }

    /// The default TTL the host at `addr` uses for its replies.
    pub fn default_ttl(&self, addr: Addr, profile: &HostProfile) -> u8 {
        let h = mix3(self.seed ^ TAG_TTL, addr.0 as u64, 0);
        match profile.ttl_mix {
            TtlMix::Unix => 64,
            TtlMix::Windows => 128,
            TtlMix::Network => 255,
            TtlMix::Mixed => {
                // 70% unix, 25% windows, 5% network gear.
                let u = unit_f64(h);
                if u < 0.70 {
                    64
                } else if u < 0.95 {
                    128
                } else {
                    255
                }
            }
            TtlMix::MixedWithCustom => {
                let u = unit_f64(h);
                if u < 0.60 {
                    64
                } else if u < 0.85 {
                    128
                } else if u < 0.90 {
                    255
                } else {
                    // Non-standard defaults; stress the inference fallback.
                    const CUSTOM: [u8; 4] = [32, 100, 150, 200];
                    CUSTOM[pick(mix2(h, 1), CUSTOM.len())]
                }
            }
        }
    }

    /// All responsive addresses within a /24 at `epoch`, ascending.
    pub fn active_in_block(&self, block: Block24, profile: &HostProfile, epoch: u32) -> Vec<Addr> {
        (1u8..=254)
            .map(|h| block.addr(h))
            .filter(|&a| self.responsive(a, profile, epoch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle() -> HostOracle {
        HostOracle::new(0xDEAD_BEEF)
    }

    fn profile(density: f32) -> HostProfile {
        HostProfile {
            density,
            ..HostProfile::default()
        }
    }

    #[test]
    fn network_and_broadcast_never_exist() {
        let o = oracle();
        let p = profile(1.0);
        let b = Block24(0x0A_0000);
        assert!(!o.exists(b.addr(0), &p));
        assert!(!o.exists(b.addr(255), &p));
        assert!(o.exists(b.addr(1), &p));
    }

    #[test]
    fn density_zero_and_one() {
        let o = oracle();
        let b = Block24(0x0A_0001);
        assert!(o.active_in_block(b, &profile(0.0), 0).is_empty());
        assert_eq!(o.active_in_block(b, &profile(1.0), 0).len(), 254);
    }

    #[test]
    fn density_is_approximately_respected() {
        let o = oracle();
        let p = profile(0.5);
        let mut total = 0usize;
        for b in 0..100u32 {
            total += o.active_in_block(Block24(0x0B_0000 + b), &p, 0).len();
        }
        let frac = total as f64 / (100.0 * 254.0);
        assert!((0.45..0.55).contains(&frac), "observed density {frac}");
    }

    #[test]
    fn epoch_zero_matches_snapshot_and_churn_flips_some() {
        let o = oracle();
        let p = HostProfile {
            density: 0.5,
            churn: 0.1,
            ..HostProfile::default()
        };
        let b = Block24(0x0C_0000);
        let snap = o.active_in_block(b, &p, 0);
        let later = o.active_in_block(b, &p, 1);
        assert!(!snap.is_empty());
        // Some but not all hosts should change state.
        assert_ne!(snap, later);
        let snap_set: std::collections::HashSet<_> = snap.iter().collect();
        let overlap = later.iter().filter(|a| snap_set.contains(a)).count();
        assert!(overlap > later.len() / 2, "churn should be mild");
    }

    #[test]
    fn zero_churn_is_stable_across_epochs() {
        let o = oracle();
        let p = HostProfile {
            density: 0.4,
            churn: 0.0,
            ..HostProfile::default()
        };
        let b = Block24(0x0D_0000);
        assert_eq!(o.active_in_block(b, &p, 0), o.active_in_block(b, &p, 5));
    }

    #[test]
    fn ttl_mix_pure_variants() {
        let o = oracle();
        let b = Block24(0x0E_0000);
        for (mix, want) in [
            (TtlMix::Unix, 64),
            (TtlMix::Windows, 128),
            (TtlMix::Network, 255),
        ] {
            let p = HostProfile {
                ttl_mix: mix,
                ..HostProfile::default()
            };
            for h in 1..100u8 {
                assert_eq!(o.default_ttl(b.addr(h), &p), want);
            }
        }
    }

    #[test]
    fn ttl_mixed_hits_standard_values() {
        let o = oracle();
        let p = HostProfile {
            ttl_mix: TtlMix::Mixed,
            ..HostProfile::default()
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u32 {
            seen.insert(o.default_ttl(Addr(0x10_000000 + i), &p));
        }
        assert!(seen.contains(&64) && seen.contains(&128) && seen.contains(&255));
        assert_eq!(seen.len(), 3, "Mixed must only produce standard TTLs");
    }

    #[test]
    fn ttl_custom_mix_produces_oddballs() {
        let o = oracle();
        let p = HostProfile {
            ttl_mix: TtlMix::MixedWithCustom,
            ..HostProfile::default()
        };
        let odd = (0..5000u32)
            .map(|i| o.default_ttl(Addr(0x20_000000 + i), &p))
            .filter(|t| ![64, 128, 255].contains(t))
            .count();
        assert!(odd > 0, "custom mix should produce non-standard TTLs");
    }

    #[test]
    fn host_is_deterministic() {
        let o = oracle();
        let p = HostProfile::default();
        let a = Addr::new(99, 1, 2, 3);
        assert_eq!(o.host(a, &p), o.host(a, &p));
    }
}
