//! Route tables with longest-prefix-match lookup and ECMP next-hop groups.
//!
//! Route entries are the heart of the paper's argument: entries for distinct
//! destination networks never partially overlap — every pair is either
//! disjoint or nested — so genuinely *heterogeneous* address groups inherit
//! that hierarchy, while load-balanced groups need not (Section 2.3).
//! The table enforces the prefix discipline; the ECMP groups produce the
//! load-balanced path diversity Hobbit must see through.

use crate::addr::{Addr, Prefix};
use crate::hash::{mix2, mix3};
use serde::{Deserialize, Serialize};

/// Identifies a router in the simulated internet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RouterId(pub u32);

/// Where a matched route entry sends the packet.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum NextHop {
    /// Forward to another router.
    Router(RouterId),
    /// The destination subnet is directly attached: deliver to the host.
    /// The router holding this entry is the destination's *last-hop router*.
    Deliver,
}

/// How an ECMP group spreads traffic over its next hops.
///
/// Mirrors the three flavours the paper distinguishes (Section 2):
/// per-flow (Paris-traceroute's target), per-destination (the confounder
/// Hobbit is built to handle), and per-packet (rare; included for
/// completeness and failure-injection tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LbPolicy {
    /// Hash over (src, dst, protocol, first 4 bytes of transport header) —
    /// for ICMP, the type/code/checksum words, so Paris probes with a fixed
    /// checksum stick to one path.
    PerFlow,
    /// Hash over the destination address only.
    PerDestination,
    /// Hash over source and destination addresses. Some routers include the
    /// source (paper Section 6.1 cites Cisco CEF); for a fixed vantage point
    /// this behaves like `PerDestination`, but reprobing from a different
    /// source would see different paths.
    PerSrcDest,
    /// A fresh choice for every packet (hashes the IP ident field).
    PerPacket,
}

/// The fields of a probe that load balancers may hash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FlowKey {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// IP protocol number.
    pub protocol: u8,
    /// For ICMP: the checksum word a per-flow balancer hashes.
    pub flow_label: u16,
    /// IP identification field; only `PerPacket` policies consume it.
    pub ip_ident: u16,
}

/// An ECMP next-hop group: one or more next hops plus the hash policy that
/// selects among them.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NextHopGroup {
    hops: Vec<NextHop>,
    policy: LbPolicy,
}

impl NextHopGroup {
    /// A single, non-load-balanced next hop.
    pub fn single(hop: NextHop) -> Self {
        NextHopGroup {
            hops: vec![hop],
            policy: LbPolicy::PerFlow,
        }
    }

    /// An ECMP group.
    ///
    /// # Panics
    /// Panics if `hops` is empty.
    pub fn ecmp(hops: Vec<NextHop>, policy: LbPolicy) -> Self {
        assert!(!hops.is_empty(), "ECMP group must have at least one hop");
        NextHopGroup { hops, policy }
    }

    /// The hops in the group.
    pub fn hops(&self) -> &[NextHop] {
        &self.hops
    }

    /// The policy used to select a hop.
    pub fn policy(&self) -> LbPolicy {
        self.policy
    }

    /// Select the next hop for a flow. `salt` is per-router so distinct
    /// routers make independent choices for the same flow.
    pub fn select(&self, key: &FlowKey, salt: u64) -> NextHop {
        self.select_among(key, salt, self.hops.len())
    }

    /// [`NextHopGroup::select`] restricted to the group's first `width` next
    /// hops (clamped to `1..=hops.len()`). The dynamics layer models
    /// load-balancer reconfiguration — narrowing, collapsing, or re-widening
    /// an ECMP fan mid-campaign — through this clamp, without ever mutating
    /// a route table (tables stay immutable once probing starts).
    pub fn select_among(&self, key: &FlowKey, salt: u64, width: usize) -> NextHop {
        let n = width.clamp(1, self.hops.len());
        if n == 1 {
            return self.hops[0];
        }
        let h = match self.policy {
            LbPolicy::PerFlow => mix3(
                salt,
                ((key.src.0 as u64) << 32) | key.dst.0 as u64,
                ((key.protocol as u64) << 16) | key.flow_label as u64,
            ),
            LbPolicy::PerDestination => mix2(salt, key.dst.0 as u64),
            LbPolicy::PerSrcDest => mix2(salt, ((key.src.0 as u64) << 32) | key.dst.0 as u64),
            LbPolicy::PerPacket => mix3(
                salt,
                ((key.src.0 as u64) << 32) | key.dst.0 as u64,
                key.ip_ident as u64,
            ),
        };
        self.hops[crate::hash::pick(h, n)]
    }
}

/// A routing table: a set of (prefix → next-hop group) entries with
/// longest-prefix-match lookup, stored in a binary trie.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RouteTable {
    nodes: Vec<TrieNode>,
    /// Parallel list of entries for iteration/inspection.
    entries: Vec<(Prefix, NextHopGroup)>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct TrieNode {
    children: [Option<u32>; 2],
    /// Index into `entries` if a route terminates here.
    entry: Option<u32>,
}

impl TrieNode {
    fn new() -> Self {
        TrieNode {
            children: [None, None],
            entry: None,
        }
    }
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        RouteTable {
            nodes: vec![TrieNode::new()],
            entries: Vec::new(),
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Install a route. A second insert for the same prefix replaces the
    /// earlier group (like a route update).
    pub fn insert(&mut self, prefix: Prefix, group: NextHopGroup) {
        let mut node = 0usize;
        for depth in 0..prefix.len() {
            let bit = ((prefix.base().0 >> (31 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(n) => n as usize,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(TrieNode::new());
                    self.nodes[node].children[bit] = Some(n as u32);
                    n
                }
            };
        }
        match self.nodes[node].entry {
            Some(i) => self.entries[i as usize] = (prefix, group),
            None => {
                self.nodes[node].entry = Some(self.entries.len() as u32);
                self.entries.push((prefix, group));
            }
        }
    }

    /// Longest-prefix-match lookup.
    pub fn lookup(&self, dst: Addr) -> Option<(Prefix, &NextHopGroup)> {
        let mut node = 0usize;
        let mut best = self.nodes[0].entry;
        for depth in 0..32 {
            let bit = ((dst.0 >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(n) => {
                    node = n as usize;
                    if let Some(e) = self.nodes[node].entry {
                        best = Some(e);
                    }
                }
                None => break,
            }
        }
        best.map(|i| {
            let (p, ref g) = self.entries[i as usize];
            (p, g)
        })
    }

    /// Iterate over all installed entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Prefix, NextHopGroup)> {
        self.entries.iter()
    }

    /// Reference LPM by linear scan; used by property tests to cross-check
    /// the trie.
    pub fn lookup_linear(&self, dst: Addr) -> Option<(Prefix, &NextHopGroup)> {
        self.entries
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len())
            .map(|(p, g)| (*p, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(n: u32) -> NextHop {
        NextHop::Router(RouterId(n))
    }

    #[test]
    fn lpm_prefers_longest() {
        let mut t = RouteTable::new();
        t.insert("10.0.0.0/8".parse().unwrap(), NextHopGroup::single(hop(1)));
        t.insert("10.1.0.0/16".parse().unwrap(), NextHopGroup::single(hop(2)));
        t.insert("10.1.2.0/24".parse().unwrap(), NextHopGroup::single(hop(3)));

        let pick = |a: &str| {
            t.lookup(a.parse().unwrap())
                .map(|(_, g)| g.hops()[0])
                .unwrap()
        };
        assert_eq!(pick("10.9.9.9"), hop(1));
        assert_eq!(pick("10.1.9.9"), hop(2));
        assert_eq!(pick("10.1.2.9"), hop(3));
        assert!(t.lookup("11.0.0.0".parse().unwrap()).is_none());
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = RouteTable::new();
        t.insert(Prefix::ALL, NextHopGroup::single(hop(9)));
        assert!(t.lookup(Addr::MIN).is_some());
        assert!(t.lookup(Addr::MAX).is_some());
    }

    #[test]
    fn insert_replaces_same_prefix() {
        let mut t = RouteTable::new();
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        t.insert(p, NextHopGroup::single(hop(1)));
        t.insert(p, NextHopGroup::single(hop(2)));
        assert_eq!(t.len(), 1);
        let (_, g) = t.lookup(Addr::new(192, 0, 2, 5)).unwrap();
        assert_eq!(g.hops()[0], hop(2));
    }

    fn key(dst: Addr, flow: u16, ident: u16) -> FlowKey {
        FlowKey {
            src: Addr::new(1, 1, 1, 1),
            dst,
            protocol: 1,
            flow_label: flow,
            ip_ident: ident,
        }
    }

    #[test]
    fn per_flow_stable_for_fixed_flow() {
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2), hop(3)], LbPolicy::PerFlow);
        let k = key(Addr::new(2, 2, 2, 2), 0xAAAA, 0);
        let first = g.select(&k, 7);
        for ident in 0..64 {
            assert_eq!(g.select(&key(k.dst, 0xAAAA, ident), 7), first);
        }
    }

    #[test]
    fn per_flow_varies_with_flow_label() {
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2), hop(3), hop(4)], LbPolicy::PerFlow);
        let dst = Addr::new(2, 2, 2, 2);
        let mut seen = std::collections::HashSet::new();
        for flow in 0..256u16 {
            seen.insert(g.select(&key(dst, flow, 0), 7));
        }
        assert_eq!(
            seen.len(),
            4,
            "varying the flow label should reach all hops"
        );
    }

    #[test]
    fn per_destination_ignores_flow_label() {
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2)], LbPolicy::PerDestination);
        let dst = Addr::new(3, 3, 3, 3);
        let first = g.select(&key(dst, 0, 0), 7);
        for flow in 0..128u16 {
            assert_eq!(g.select(&key(dst, flow, flow), 7), first);
        }
    }

    #[test]
    fn per_destination_varies_with_destination() {
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2)], LbPolicy::PerDestination);
        let mut seen = std::collections::HashSet::new();
        for d in 0..64u32 {
            seen.insert(g.select(&key(Addr(0x0a000000 + d), 0, 0), 7));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn per_packet_varies_with_ident() {
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2)], LbPolicy::PerPacket);
        let dst = Addr::new(4, 4, 4, 4);
        let mut seen = std::collections::HashSet::new();
        for ident in 0..64u16 {
            seen.insert(g.select(&key(dst, 0, ident), 7));
        }
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn salt_decorrelates_routers() {
        // Two routers with identical 2-way groups should not always agree;
        // otherwise multi-stage ECMP would not multiply path counts.
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2)], LbPolicy::PerDestination);
        let mut agree = 0;
        let n = 1000;
        for d in 0..n {
            let k = key(Addr(0x0B00_0000 + d), 0, 0);
            if g.select(&k, 1) == g.select(&k, 2) {
                agree += 1;
            }
        }
        assert!(
            (350..650).contains(&agree),
            "agreement {agree}/{n} not ~half"
        );
    }

    #[test]
    fn select_among_clamps_and_matches_full_width() {
        let g = NextHopGroup::ecmp(vec![hop(1), hop(2), hop(3)], LbPolicy::PerDestination);
        for d in 0..64u32 {
            let k = key(Addr(0x0a00_0000 + d), 0, 0);
            assert_eq!(g.select_among(&k, 7, 3), g.select(&k, 7));
            assert_eq!(g.select_among(&k, 7, 1), hop(1));
            assert_eq!(g.select_among(&k, 7, 0), hop(1), "width 0 clamps to 1");
            assert!([hop(1), hop(2)].contains(&g.select_among(&k, 7, 2)));
            assert_eq!(g.select_among(&k, 7, 9), g.select(&k, 7), "clamps to len");
        }
    }

    #[test]
    fn single_hop_group_ignores_everything() {
        let g = NextHopGroup::single(NextHop::Deliver);
        let k = key(Addr::new(5, 5, 5, 5), 9, 9);
        assert_eq!(g.select(&k, 1), NextHop::Deliver);
    }
}
