//! Latency model.
//!
//! Hobbit itself only needs reply TTLs and router addresses, but two of the
//! paper's experiments are latency-based: the cellular-block identification
//! of Section 5.2 / Figure 6 (first probe to a cellular device pays a radio
//! wake-up delay) and general RTT sanity in the examples. The model is
//! deliberately simple — per-hop propagation, per-probe jitter, and a
//! radio-state machine for cellular hosts — but every draw is a pure
//! function of the seed.

use crate::addr::Addr;
use crate::hash::{mix3, unit_f64};
use crate::host::HostKind;

/// Deterministic latency model.
#[derive(Clone, Copy, Debug)]
pub struct RttModel {
    seed: u64,
    /// Per-hop one-way propagation+queueing, microseconds.
    pub hop_us: u32,
    /// Relative jitter applied per probe (fraction of the base RTT).
    pub jitter_frac: f32,
    /// Radio wake-up delay for a cold cellular host: lower bound, µs.
    pub cell_wake_min_us: u32,
    /// Radio wake-up delay for a cold cellular host: upper bound, µs.
    pub cell_wake_max_us: u32,
}

impl RttModel {
    /// Model with the defaults used by the paper-scale scenarios.
    pub fn new(seed: u64) -> Self {
        RttModel {
            seed,
            hop_us: 800,
            jitter_frac: 0.08,
            // Figure 6: ~50% of cellular first-probe deltas exceed 0.5s and
            // ≥10% reach 1s, so draw wake-up delays in [0.3s, 2.0s].
            cell_wake_min_us: 300_000,
            cell_wake_max_us: 2_000_000,
        }
    }

    /// Round-trip time for one probe.
    ///
    /// * `hops` — router hops traversed one way;
    /// * `base_us` — destination's access-link latency (from its profile);
    /// * `kind` — host kind; cellular hosts pay the wake-up delay when cold;
    /// * `cold` — whether this is the first probe since the radio idled;
    /// * `nonce` — per-probe value (e.g. IP ident) for jitter.
    pub fn rtt_us(
        &self,
        dst: Addr,
        hops: u32,
        base_us: u32,
        kind: HostKind,
        cold: bool,
        nonce: u64,
    ) -> u64 {
        let path = 2 * (hops as u64) * self.hop_us as u64 + base_us as u64;
        let jitter_draw = unit_f64(mix3(self.seed ^ 0x6A, dst.0 as u64, nonce));
        let jitter = (path as f64 * self.jitter_frac as f64 * jitter_draw) as u64;
        let wake = if cold && kind == HostKind::Cellular {
            let u = unit_f64(mix3(self.seed ^ 0x6B, dst.0 as u64, nonce));
            self.cell_wake_min_us as u64
                + (u * (self.cell_wake_max_us - self.cell_wake_min_us) as f64) as u64
        } else {
            0
        };
        path + jitter + wake
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtt_grows_with_hops() {
        let m = RttModel::new(7);
        let a = Addr::new(1, 2, 3, 4);
        let short = m.rtt_us(a, 3, 10_000, HostKind::Server, false, 0);
        let long = m.rtt_us(a, 12, 10_000, HostKind::Server, false, 0);
        assert!(long > short);
    }

    #[test]
    fn cold_cellular_pays_wakeup() {
        let m = RttModel::new(7);
        let a = Addr::new(5, 6, 7, 8);
        let cold = m.rtt_us(a, 6, 30_000, HostKind::Cellular, true, 1);
        let warm = m.rtt_us(a, 6, 30_000, HostKind::Cellular, false, 1);
        assert!(cold >= warm + 300_000, "cold {cold} vs warm {warm}");
        assert!(cold <= warm + 2_100_000);
    }

    #[test]
    fn cold_server_pays_nothing_extra() {
        let m = RttModel::new(7);
        let a = Addr::new(9, 9, 9, 9);
        let cold = m.rtt_us(a, 6, 5_000, HostKind::Server, true, 2);
        let warm = m.rtt_us(a, 6, 5_000, HostKind::Server, false, 2);
        assert_eq!(cold, warm);
    }

    #[test]
    fn jitter_varies_with_nonce_but_is_bounded() {
        let m = RttModel::new(7);
        let a = Addr::new(4, 3, 2, 1);
        let base = 2 * 6 * m.hop_us as u64 + 20_000;
        let mut distinct = std::collections::HashSet::new();
        for nonce in 0..50u64 {
            let rtt = m.rtt_us(a, 6, 20_000, HostKind::Residential, false, nonce);
            assert!(rtt >= base);
            assert!(rtt <= base + (base as f64 * m.jitter_frac as f64) as u64 + 1);
            distinct.insert(rtt);
        }
        assert!(distinct.len() > 10, "jitter should vary across probes");
    }
}
