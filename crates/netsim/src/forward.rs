//! The forwarding engine: what happens to a probe injected at the vantage.
//!
//! The only interface measurement tools get is [`Network::send`]: bytes in,
//! optional bytes out, plus a measured RTT — exactly the information a real
//! prober gets from a raw socket. Everything Hobbit infers must come through
//! this bottleneck.

use crate::addr::Addr;
use crate::dynamics::{DynamicsEvent, NetemSpec};
use crate::hash::{mix3, unit_f64};
use crate::host::HostKind;
use crate::route::{FlowKey, NextHop, RouterId};
use crate::topology::Network;
use crate::wire::{
    IcmpEcho, IcmpError, Ipv4Header, WireError, ICMP_DEST_UNREACH, ICMP_ECHO_REQUEST,
    ICMP_TIME_EXCEEDED,
};
use bytes::{Bytes, BytesMut};

/// Timeout reported when no response arrives, in microseconds.
pub const TIMEOUT_US: u64 = 2_000_000;

/// Maximum number of routers a probe may traverse before the network
/// declares a forwarding loop and drops it.
pub const MAX_HOPS: u32 = 64;

/// The observable outcome of one probe.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The response packet, if any (echo reply or ICMP error).
    pub response: Option<Bytes>,
    /// Measured round-trip (or the timeout value when `response` is None).
    pub rtt_us: u64,
}

/// Why `Network::send` rejected a probe outright (malformed input is a
/// caller bug, not a network condition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The packet failed to parse.
    Wire(WireError),
    /// The source address is not the vantage address.
    NotFromVantage(Addr),
    /// Only ICMP echo requests can be injected.
    NotEchoRequest(u8),
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::Wire(e) => write!(f, "malformed probe: {e}"),
            SendError::NotFromVantage(a) => write!(f, "probe source {a} is not the vantage"),
            SendError::NotEchoRequest(t) => write!(f, "probe is not an echo request (type {t})"),
        }
    }
}

impl std::error::Error for SendError {}

impl From<WireError> for SendError {
    fn from(e: WireError) -> Self {
        SendError::Wire(e)
    }
}

/// Internal result of walking the forwarding path.
enum Outcome {
    Expired { at: RouterId, hops: u32 },
    Delivered { hops: u32 },
    NoRoute { at: RouterId, hops: u32 },
    Dropped,
}

impl Network {
    /// Inject an ICMP echo request at the vantage point.
    ///
    /// Returns the response bytes (echo reply, Time Exceeded, or Destination
    /// Unreachable) and the measured RTT, or `response: None` on timeout —
    /// which can mean an unresponsive destination, an anonymous or
    /// rate-limited router, a forwarding loop, or an unrouted destination.
    ///
    /// Takes `&self`: the per-probe state (probe accounting, cellular
    /// warm-up) lives behind interior mutability, so any number of threads
    /// may probe one shared network (see [`crate::concurrent`]).
    pub fn send(&self, probe: Bytes) -> Result<Delivery, SendError> {
        let mut buf = probe;
        let ip = Ipv4Header::decode(&mut buf)?;
        let Some(entry_router) = self.vantage_router_for(ip.src) else {
            return Err(SendError::NotFromVantage(ip.src));
        };
        let (icmp_type, echo) = IcmpEcho::decode(&mut buf)?;
        if icmp_type != ICMP_ECHO_REQUEST {
            return Err(SendError::NotEchoRequest(icmp_type));
        }
        self.record_carried_probe();

        let key = FlowKey {
            src: ip.src,
            dst: ip.dst,
            protocol: ip.protocol,
            flow_label: echo.wire_checksum(ICMP_ECHO_REQUEST),
            ip_ident: ip.ident,
        };
        let nonce = mix3(
            ip.dst.0 as u64,
            ((ip.ident as u64) << 32) | ((echo.ident as u64) << 16) | echo.seq as u64,
            key.flow_label as u64,
        );

        // The dynamics epoch this probe lands in. The virtual clock is per
        // probe *stream* — `(icmp ident, destination /24)`, the same stream
        // identity the ICMP token buckets key on — so a stream's tick count
        // is exactly its prober's local sequential probe count: a pure
        // function of the stream prefix, independent of worker-thread
        // interleaving, resume, and shard layout. With no live event
        // schedule the clock never ticks and the epoch is always 0.
        let epoch = if self.dynamics.events_active() {
            let tick = self.vclock.tick((echo.ident, ip.dst.block24().0));
            self.dynamics.epoch_of(tick)
        } else {
            0
        };

        let outcome = self.walk(&key, ip.ttl, entry_router, nonce, epoch);
        let mut delivery = match outcome {
            Outcome::Expired { at, hops } => {
                self.router_error(at, hops, ICMP_TIME_EXCEEDED, &ip, &echo, nonce, epoch)
            }
            Outcome::NoRoute { at, hops } => {
                self.router_error(at, hops, ICMP_DEST_UNREACH, &ip, &echo, nonce, epoch)
            }
            Outcome::Dropped => timeout(),
            Outcome::Delivered { hops, .. } => self.host_reply(&ip, &echo, hops, nonce),
        };
        if let Some(netem) = self.dynamics.netem {
            self.apply_netem(&mut delivery, ip.dst, nonce, netem);
        }
        Ok(delivery)
    }

    /// Walk the forwarding path for a flow, decrementing TTL at each router.
    ///
    /// When fault injection is on, each hop transition is a seeded
    /// per-link loss draw: keyed by the link (current router, hop index)
    /// and the probe nonce, so a given probe's fate is a pure function of
    /// its wire bytes — identical at any thread count — while retries
    /// (fresh seq/ident, fresh nonce) are independent draws.
    fn walk(&self, key: &FlowKey, ttl: u8, entry: RouterId, nonce: u64, epoch: u32) -> Outcome {
        let mut ttl = ttl as u32;
        let mut cur = entry;
        let mut prev: Option<RouterId> = None;
        let mut hops = 0u32;
        let mut loop_counted = false;
        let link_loss = self.faults.link_loss;
        loop {
            hops += 1;
            if hops > MAX_HOPS {
                return Outcome::Dropped;
            }
            if ttl == 0 {
                // The probe never had budget to reach the first router.
                return Outcome::Dropped;
            }
            if link_loss > 0.0 {
                let draw = mix3(
                    self.seed ^ 0x11AC,
                    ((hops as u64) << 32) | cur.0 as u64,
                    nonce,
                );
                if unit_f64(draw) < link_loss as f64 {
                    // Lost on the wire into `cur`: no Time Exceeded, no
                    // delivery — the prober just sees silence.
                    self.fault_counters.link_drops.inc();
                    return Outcome::Dropped;
                }
            }
            ttl -= 1;
            if ttl == 0 {
                return Outcome::Expired { at: cur, hops };
            }
            let router = self.router(cur);
            let Some((_, group)) = router.table.lookup(key.dst) else {
                return Outcome::NoRoute { at: cur, hops };
            };
            // Dynamics: the event schedule perturbs selection at this
            // router, never the route table (tables stay immutable — all
            // evolution is a pure function of (schedule, epoch, flow)).
            let mut salt = self.salt(cur);
            let mut width = usize::MAX;
            if !self.dyn_events.is_empty() {
                if let Some(evs) = self.dyn_events.get(&cur.0) {
                    // Transient loop: *during* its epoch only, the router
                    // forwards back toward the previous hop. The probe
                    // bounces between the pair, burning TTL, and expires
                    // inside the loop — the alternating-address ladder
                    // traceroute folklore knows. The loop heals itself
                    // when the epoch rolls over.
                    if let Some(back) = prev {
                        let looping = evs.iter().any(|e| {
                            matches!(e, DynamicsEvent::TransientLoop { at_epoch, .. }
                                     if *at_epoch == epoch)
                        });
                        if looping {
                            if !loop_counted {
                                self.dyn_counters.loops.inc();
                                loop_counted = true;
                            }
                            prev = Some(cur);
                            cur = back;
                            continue;
                        }
                    }
                    // Route churn: the latest applicable rewrite re-salts
                    // ECMP selection, remapping flows over existing links.
                    let rewrite = evs
                        .iter()
                        .filter_map(|e| match e {
                            DynamicsEvent::NextHopRewrite { at_epoch, .. }
                                if *at_epoch <= epoch =>
                            {
                                Some(*at_epoch)
                            }
                            _ => None,
                        })
                        .max();
                    if let Some(at) = rewrite {
                        salt = mix3(salt, 0xD1CE, at as u64);
                        self.dyn_counters.rewrites.inc();
                    }
                    // Load-balancer resize: the latest applicable width
                    // clamps selection to the group's first `width` hops.
                    let resize = evs
                        .iter()
                        .filter_map(|e| match e {
                            DynamicsEvent::LbResize {
                                at_epoch, width, ..
                            } if *at_epoch <= epoch => Some((*at_epoch, *width)),
                            _ => None,
                        })
                        .max_by_key(|&(at, _)| at);
                    if let Some((_, w)) = resize {
                        width = w as usize;
                        self.dyn_counters.resizes.inc();
                    }
                }
            }
            let hop = if width == usize::MAX {
                group.select(key, salt)
            } else {
                group.select_among(key, salt, width)
            };
            match hop {
                NextHop::Deliver => return Outcome::Delivered { hops },
                NextHop::Router(next) => {
                    prev = Some(cur);
                    cur = next;
                }
            }
        }
    }

    /// Build a router-sourced ICMP error, subject to responsiveness and
    /// rate limiting.
    #[allow(clippy::too_many_arguments)]
    fn router_error(
        &self,
        at: RouterId,
        hops: u32,
        icmp_type: u8,
        probe_ip: &Ipv4Header,
        probe_echo: &IcmpEcho,
        nonce: u64,
        epoch: u32,
    ) -> Delivery {
        let router = self.router(at);
        if !router.responsive {
            return timeout();
        }
        match self.faults.icmp_rate {
            // Token-bucket rate limiting at every responsive router; the
            // bucket is per probe stream (router, prober ident, target /24)
            // so admission never depends on worker-thread interleaving.
            Some(rate) => {
                let stream = (at.0, probe_echo.ident, probe_ip.dst.block24().0);
                if !self.buckets.admit(stream, rate, self.faults.icmp_burst) {
                    self.fault_counters.rate_limited_drops.inc();
                    return timeout();
                }
            }
            // Legacy behavior: scenario-flagged routers suppress replies
            // with a stateless Bernoulli draw.
            None if router.icmp_loss > 0.0 => {
                let drop = unit_f64(mix3(self.seed ^ 0x5A, at.0 as u64, nonce));
                if drop < router.icmp_loss as f64 {
                    self.fault_counters.icmp_loss_drops.inc();
                    return timeout();
                }
            }
            None => {}
        }
        let err = IcmpError {
            icmp_type,
            quoted: Ipv4Header {
                ttl: 1,
                ..*probe_ip
            },
            quoted_echo: *probe_echo,
            quoted_type: ICMP_ECHO_REQUEST,
        };
        // Routers with two interfaces answer from a destination-dependent
        // one (the reply egress depends on the internal per-destination
        // route toward the probe source) — a classic traceroute artifact
        // that inflates entire-route cardinality without changing last-hop
        // identity. This is what makes whole-traceroute comparison so much
        // weaker than last-hop comparison (paper §3.1).
        let mut src = match router.alt_addr {
            Some(alt) if mix3(self.seed ^ 0x41F, at.0 as u64, probe_ip.dst.0 as u64) & 1 == 1 => {
                alt
            }
            _ => router.addr,
        };
        // Dynamics artifacts that corrupt the reply *source address* — the
        // only field last-hop classification reads:
        if !self.dyn_events.is_empty() {
            if let Some(evs) = self.dyn_events.get(&at.0) {
                // Address reuse: errors sourced from an address already on
                // the path upstream — an apparent cycle with no routing
                // loop behind it.
                let reuse = evs
                    .iter()
                    .filter_map(|e| match e {
                        DynamicsEvent::AddressReuse {
                            at_epoch, alias, ..
                        } if *at_epoch <= epoch => Some((*at_epoch, *alias)),
                        _ => None,
                    })
                    .max_by_key(|&(a, _)| a);
                if let Some((_, alias)) = reuse {
                    src = alias;
                    self.dyn_counters.addr_reuses.inc();
                }
                // False diamond: the reply source alternates per probe,
                // fabricating a phantom per-packet interface pair.
                let diamond = evs
                    .iter()
                    .filter_map(|e| match e {
                        DynamicsEvent::FalseDiamond {
                            at_epoch, alias, ..
                        } if *at_epoch <= epoch => Some((*at_epoch, *alias)),
                        _ => None,
                    })
                    .max_by_key(|&(a, _)| a);
                if let Some((_, alias)) = diamond {
                    if nonce & 1 == 1 {
                        src = alias;
                        self.dyn_counters.false_diamonds.inc();
                    }
                }
            }
        }
        let outer = Ipv4Header {
            src,
            dst: probe_ip.src,
            ttl: 255u8.saturating_sub(hops as u8),
            protocol: 1,
            ident: (nonce & 0xffff) as u16,
        };
        let mut buf = BytesMut::new();
        outer.encode(&mut buf);
        err.encode(&mut buf);
        let rtt = self
            .rtt
            .rtt_us(router.addr, hops, 0, HostKind::Server, false, nonce);
        Delivery {
            response: Some(buf.freeze()),
            rtt_us: rtt,
        }
    }

    /// Build the destination host's echo reply, if the host exists and
    /// responds at the current epoch.
    fn host_reply(
        &self,
        probe_ip: &Ipv4Header,
        probe_echo: &IcmpEcho,
        hops: u32,
        nonce: u64,
    ) -> Delivery {
        let dst = probe_ip.dst;
        let Some(profile) = self.blocks.get(&dst.block24()).copied() else {
            return timeout();
        };
        if !self.oracle.responsive(dst, &profile, self.epoch) {
            return timeout();
        }
        // Note: churn can bring up hosts absent from the snapshot population
        // (paper footnote 2), so derive properties directly rather than
        // requiring snapshot existence.
        let default_ttl = self.oracle.default_ttl(dst, &profile);
        // Reverse-path hop count: forward hops plus a small per-block
        // asymmetry, so TTL-based hop inference is realistic, not exact.
        let asym_draw = unit_f64(mix3(self.seed ^ 0x51, dst.block24().0 as u64, 0));
        let asym = if asym_draw < 0.6 {
            0
        } else if asym_draw < 0.9 {
            1
        } else {
            2
        };
        let reverse_hops = hops + asym;
        let remaining = default_ttl.saturating_sub(reverse_hops as u8).max(1);

        let cold = profile.kind == HostKind::Cellular && !self.warmed.contains(dst);
        if profile.kind == HostKind::Cellular {
            self.warmed.warm(dst);
        }
        let rtt = self
            .rtt
            .rtt_us(dst, hops, profile.base_rtt_us, profile.kind, cold, nonce);

        let outer = Ipv4Header {
            src: dst,
            dst: probe_ip.src,
            ttl: remaining,
            protocol: 1,
            ident: (nonce >> 16 & 0xffff) as u16,
        };
        let mut buf = BytesMut::new();
        outer.encode(&mut buf);
        probe_echo.encode_reply(&mut buf);
        Delivery {
            response: Some(buf.freeze()),
            rtt_us: rtt,
        }
    }

    /// Apply netem-style perturbation to a delivered reply: fixed delay, a
    /// per-probe jitter draw, "reordering" modeled as a full extra jitter
    /// window of tail latency (a request/response simulator has no second
    /// in-flight packet to swap with), and duplication as pure accounting
    /// (a prober's request/response matching discards the copy anyway).
    /// All draws are pure functions of the probe nonce, so perturbation is
    /// byte-identical at any thread count.
    fn apply_netem(&self, d: &mut Delivery, dst: Addr, nonce: u64, n: NetemSpec) {
        if d.response.is_none() {
            return;
        }
        let mut extra = n.delay_us as u64;
        if n.jitter_us > 0 {
            let draw = unit_f64(mix3(self.seed ^ 0x7E77, dst.0 as u64, nonce));
            extra += (draw * n.jitter_us as f64) as u64;
        }
        if n.reorder_prob > 0.0
            && unit_f64(mix3(self.seed ^ 0x7E78, dst.0 as u64, nonce)) < n.reorder_prob as f64
        {
            extra += n.jitter_us.max(n.delay_us) as u64;
            self.dyn_counters.netem_reorders.inc();
        }
        if n.duplicate_prob > 0.0
            && unit_f64(mix3(self.seed ^ 0x7E79, dst.0 as u64, nonce)) < n.duplicate_prob as f64
        {
            self.dyn_counters.netem_duplicates.inc();
        }
        if extra > 0 {
            d.rtt_us += extra;
            self.dyn_counters.netem_delays.inc();
        }
    }
}

fn timeout() -> Delivery {
    Delivery {
        response: None,
        rtt_us: TIMEOUT_US,
    }
}

/// Convenience: encode an echo-request probe as wire bytes.
///
/// `flow_label` is the ICMP checksum the probe will carry (the Paris flow
/// identifier); the payload tweak is solved to hit it exactly.
pub fn encode_probe(
    src: Addr,
    dst: Addr,
    ttl: u8,
    ident: u16,
    seq: u16,
    flow_label: u16,
    ip_ident: u16,
) -> Bytes {
    let ip = Ipv4Header {
        src,
        dst,
        ttl,
        protocol: 1,
        ident: ip_ident,
    };
    let echo = IcmpEcho::with_checksum(ident, seq, flow_label);
    let mut buf = BytesMut::new();
    ip.encode(&mut buf);
    echo.encode_request(&mut buf);
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Prefix;
    use crate::host::HostProfile;
    use crate::route::{LbPolicy, NextHopGroup};
    use crate::wire::ICMP_ECHO_REPLY;

    /// vantage -> r0 -> r1 -> r2(deliver 10.0.0.0/24)
    fn chain() -> Network {
        let mut net = Network::new(99, Addr::new(192, 0, 2, 1));
        let r0 = net.add_router(Addr::new(10, 255, 0, 1));
        let r1 = net.add_router(Addr::new(10, 255, 0, 2));
        let r2 = net.add_router(Addr::new(10, 255, 0, 3));
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        net.install_route(r0, p, NextHopGroup::single(NextHop::Router(r1)));
        net.install_route(r1, p, NextHopGroup::single(NextHop::Router(r2)));
        net.install_route(r2, p, NextHopGroup::single(NextHop::Deliver));
        net.set_block_profile(
            Addr::new(10, 0, 0, 0).block24(),
            HostProfile {
                density: 1.0,
                churn: 0.0,
                ..HostProfile::default()
            },
        );
        net
    }

    fn probe(net: &Network, dst: Addr, ttl: u8) -> Bytes {
        encode_probe(net.vantage_addr(), dst, ttl, 7, 1, 0xAAAA, 0)
    }

    fn parse_response(d: &Delivery) -> (Ipv4Header, u8) {
        let mut b = d.response.clone().expect("expected a response");
        let ip = Ipv4Header::decode(&mut b).unwrap();
        let t = b[0];
        (ip, t)
    }

    #[test]
    fn echo_reaches_host_with_enough_ttl() {
        let net = chain();
        let dst = Addr::new(10, 0, 0, 5);
        let d = net.send(probe(&net, dst, 64)).unwrap();
        let (ip, t) = parse_response(&d);
        assert_eq!(t, ICMP_ECHO_REPLY);
        assert_eq!(ip.src, dst);
        // Host default TTL minus ~3-5 reverse hops.
        assert!(ip.ttl >= 50, "reply ttl {}", ip.ttl);
    }

    #[test]
    fn ttl_expiry_walks_the_chain() {
        let net = chain();
        let dst = Addr::new(10, 0, 0, 5);
        let mut hops = Vec::new();
        for ttl in 1..=3u8 {
            let d = net.send(probe(&net, dst, ttl)).unwrap();
            let (ip, t) = parse_response(&d);
            assert_eq!(t, ICMP_TIME_EXCEEDED, "ttl {ttl}");
            hops.push(ip.src);
        }
        assert_eq!(
            hops,
            vec![
                Addr::new(10, 255, 0, 1),
                Addr::new(10, 255, 0, 2),
                Addr::new(10, 255, 0, 3),
            ]
        );
        // TTL 4 delivers.
        let d = net.send(probe(&net, dst, 4)).unwrap();
        let (_, t) = parse_response(&d);
        assert_eq!(t, ICMP_ECHO_REPLY);
    }

    #[test]
    fn anonymous_router_times_out() {
        let mut net = chain();
        net.router_mut(RouterId(1)).responsive = false;
        let dst = Addr::new(10, 0, 0, 5);
        let d = net.send(probe(&net, dst, 2)).unwrap();
        assert!(d.response.is_none());
        assert_eq!(d.rtt_us, TIMEOUT_US);
    }

    #[test]
    fn rate_limited_router_drops_some() {
        let mut net = chain();
        net.router_mut(RouterId(1)).icmp_loss = 0.5;
        let dst = Addr::new(10, 0, 0, 5);
        let mut answered = 0;
        for seq in 0..100u16 {
            let p = encode_probe(net.vantage_addr(), dst, 2, 7, seq, 0xAAAA, seq);
            if net.send(p).unwrap().response.is_some() {
                answered += 1;
            }
        }
        assert!((25..75).contains(&answered), "answered {answered}/100");
    }

    #[test]
    fn unrouted_destination_gets_unreachable() {
        let net = chain();
        let d = net.send(probe(&net, Addr::new(11, 0, 0, 1), 64)).unwrap();
        let (ip, t) = parse_response(&d);
        assert_eq!(t, ICMP_DEST_UNREACH);
        assert_eq!(ip.src, Addr::new(10, 255, 0, 1));
    }

    #[test]
    fn unresponsive_host_times_out() {
        let mut net = chain();
        // Density 0 block: routed but nobody home.
        net.set_block_profile(
            Addr::new(10, 0, 0, 0).block24(),
            HostProfile {
                density: 0.0,
                ..HostProfile::default()
            },
        );
        let d = net.send(probe(&net, Addr::new(10, 0, 0, 5), 64)).unwrap();
        assert!(d.response.is_none());
    }

    #[test]
    fn rejects_probe_not_from_vantage() {
        let net = chain();
        let p = encode_probe(
            Addr::new(9, 9, 9, 9),
            Addr::new(10, 0, 0, 5),
            64,
            1,
            1,
            0,
            0,
        );
        assert!(matches!(net.send(p), Err(SendError::NotFromVantage(_))));
    }

    #[test]
    fn rejects_garbage_bytes() {
        let net = chain();
        assert!(matches!(
            net.send(Bytes::from_static(&[1, 2, 3])),
            Err(SendError::Wire(_))
        ));
    }

    #[test]
    fn forwarding_loop_is_dropped() {
        let mut net = Network::new(1, Addr::new(192, 0, 2, 1));
        let r0 = net.add_router(Addr::new(10, 255, 0, 1));
        let r1 = net.add_router(Addr::new(10, 255, 0, 2));
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        net.install_route(r0, p, NextHopGroup::single(NextHop::Router(r1)));
        net.install_route(r1, p, NextHopGroup::single(NextHop::Router(r0)));
        let probe = encode_probe(net.vantage_addr(), Addr::new(10, 0, 0, 1), 255, 1, 1, 0, 0);
        let d = net.send(probe).unwrap();
        assert!(d.response.is_none());
    }

    #[test]
    fn probe_count_is_tracked() {
        let net = chain();
        assert_eq!(net.probes_carried(), 0);
        let _ = net.send(probe(&net, Addr::new(10, 0, 0, 5), 64));
        let _ = net.send(probe(&net, Addr::new(10, 0, 0, 6), 64));
        assert_eq!(net.probes_carried(), 2);
    }

    #[test]
    fn link_loss_drops_some_probes_deterministically() {
        use crate::fault::FaultConfig;
        let mut net = chain();
        net.set_faults(FaultConfig {
            link_loss: 0.2,
            ..FaultConfig::none()
        });
        let dst = Addr::new(10, 0, 0, 5);
        let outcomes: Vec<bool> = (0..100u16)
            .map(|seq| {
                let p = encode_probe(net.vantage_addr(), dst, 64, 7, seq, 0xAAAA, seq);
                net.send(p).unwrap().response.is_some()
            })
            .collect();
        let answered = outcomes.iter().filter(|&&a| a).count();
        // 4 hops at 20% per-link loss ≈ 41% end-to-end survival per probe.
        assert!((20..75).contains(&answered), "answered {answered}/100");
        assert!(net.net_stats().link_drops > 0);
        // Byte-identical probes meet byte-identical fates on a fresh clone.
        let replayed = chain();
        let mut net2 = replayed;
        net2.set_faults(FaultConfig {
            link_loss: 0.2,
            ..FaultConfig::none()
        });
        let again: Vec<bool> = (0..100u16)
            .map(|seq| {
                let p = encode_probe(net2.vantage_addr(), dst, 64, 7, seq, 0xAAAA, seq);
                net2.send(p).unwrap().response.is_some()
            })
            .collect();
        assert_eq!(outcomes, again);
    }

    #[test]
    fn token_bucket_rate_limits_icmp_errors() {
        let mut net = chain();
        net.set_faults(crate::fault::FaultConfig::lossy(0.0, 0.25));
        let dst = Addr::new(10, 0, 0, 5);
        let mut answered = 0;
        let mut worst_run = 0;
        let mut run = 0;
        for seq in 0..100u16 {
            let p = encode_probe(net.vantage_addr(), dst, 2, 7, seq, 0xAAAA, seq);
            if net.send(p).unwrap().response.is_some() {
                answered += 1;
                run = 0;
            } else {
                run += 1;
                worst_run = worst_run.max(run);
            }
        }
        // Burst of 4 passes, then throttled to ~1 in 4.
        assert!((20..50).contains(&answered), "answered {answered}/100");
        // Refill 0.25 bounds consecutive denials at 3 — the guarantee the
        // prober's retry budget leans on.
        assert!(worst_run <= 3, "saw {worst_run} consecutive denials");
        assert!(net.net_stats().rate_limited_drops > 0);
        // A different prober ident is a separate stream with a fresh burst.
        let p = encode_probe(net.vantage_addr(), dst, 2, 8, 0, 0xAAAA, 0);
        assert!(net.send(p).unwrap().response.is_some());
    }

    #[test]
    fn legacy_bernoulli_drops_are_counted() {
        let mut net = chain();
        net.router_mut(RouterId(1)).icmp_loss = 0.5;
        let dst = Addr::new(10, 0, 0, 5);
        for seq in 0..50u16 {
            let p = encode_probe(net.vantage_addr(), dst, 2, 7, seq, 0xAAAA, seq);
            let _ = net.send(p);
        }
        let stats = net.net_stats();
        assert!(stats.icmp_loss_drops > 0);
        assert_eq!(stats.rate_limited_drops, 0);
        assert_eq!(stats.link_drops, 0);
        assert_eq!(stats.probes_carried, 50);
    }

    #[test]
    fn per_destination_ecmp_changes_lasthop_between_addresses() {
        // vantage -> r0 -(per-dest ecmp)-> {r1, r2} -> deliver
        let mut net = Network::new(5, Addr::new(192, 0, 2, 1));
        let r0 = net.add_router(Addr::new(10, 255, 0, 1));
        let r1 = net.add_router(Addr::new(10, 255, 0, 2));
        let r2 = net.add_router(Addr::new(10, 255, 0, 3));
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        net.install_route(
            r0,
            p,
            NextHopGroup::ecmp(
                vec![NextHop::Router(r1), NextHop::Router(r2)],
                LbPolicy::PerDestination,
            ),
        );
        net.install_route(r1, p, NextHopGroup::single(NextHop::Deliver));
        net.install_route(r2, p, NextHopGroup::single(NextHop::Deliver));
        net.set_block_profile(
            Addr::new(10, 0, 0, 0).block24(),
            HostProfile {
                density: 1.0,
                churn: 0.0,
                ..HostProfile::default()
            },
        );
        // The last-hop router (ttl=2 expiry) should differ across addresses
        // but be stable for one address across flow labels.
        let mut lasthops = std::collections::HashSet::new();
        for host in 1..32u8 {
            let dst = Addr::new(10, 0, 0, host);
            let mut per_dst = std::collections::HashSet::new();
            for flow in [0x1111u16, 0x2222, 0x3333] {
                let pr = encode_probe(net.vantage_addr(), dst, 2, 1, 1, flow, 0);
                let d = net.send(pr).unwrap();
                let (ip, t) = parse_response(&d);
                assert_eq!(t, ICMP_TIME_EXCEEDED);
                per_dst.insert(ip.src);
            }
            assert_eq!(per_dst.len(), 1, "per-destination must be flow-stable");
            lasthops.extend(per_dst);
        }
        assert_eq!(lasthops.len(), 2, "both parallel last-hops should appear");
    }

    use crate::dynamics::{DynamicsConfig, DynamicsEvent};

    #[test]
    fn transient_loop_bounces_then_heals() {
        let mut net = chain();
        net.set_dynamics(DynamicsConfig {
            period: 8,
            events: vec![DynamicsEvent::TransientLoop {
                router: RouterId(1),
                at_epoch: 0,
            }],
            netem: None,
        });
        let dst = Addr::new(10, 0, 0, 5);
        // Epoch 0 (ticks 0..8): r1 bounces probes back to r0, so a ttl-3
        // probe expires at r0 (static world: at r2), and even a ttl-64
        // probe never reaches the host.
        let d = net.send(probe(&net, dst, 3)).unwrap();
        let (ip, t) = parse_response(&d);
        assert_eq!(t, ICMP_TIME_EXCEEDED);
        assert_eq!(ip.src, Addr::new(10, 255, 0, 1), "expiry inside the loop");
        let d = net.send(probe(&net, dst, 64)).unwrap();
        let (_, t) = parse_response(&d);
        assert_eq!(t, ICMP_TIME_EXCEEDED, "loop blocks delivery");
        assert!(net.net_stats().dyn_loops > 0);
        // Burn the rest of epoch 0 on this stream; at epoch 1 the loop has
        // healed and the same probe bytes deliver again.
        for _ in 0..6 {
            let _ = net.send(probe(&net, dst, 64));
        }
        let d = net.send(probe(&net, dst, 64)).unwrap();
        let (ip, t) = parse_response(&d);
        assert_eq!(t, ICMP_ECHO_REPLY, "loop heals after its epoch");
        assert_eq!(ip.src, dst);
    }

    /// vantage -> r0 -(per-dest ecmp)-> {r1, r2} -> deliver, as a fixture.
    fn fan2() -> Network {
        let mut net = Network::new(5, Addr::new(192, 0, 2, 1));
        let r0 = net.add_router(Addr::new(10, 255, 0, 1));
        let r1 = net.add_router(Addr::new(10, 255, 0, 2));
        let r2 = net.add_router(Addr::new(10, 255, 0, 3));
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        net.install_route(
            r0,
            p,
            NextHopGroup::ecmp(
                vec![NextHop::Router(r1), NextHop::Router(r2)],
                LbPolicy::PerDestination,
            ),
        );
        net.install_route(r1, p, NextHopGroup::single(NextHop::Deliver));
        net.install_route(r2, p, NextHopGroup::single(NextHop::Deliver));
        net.set_block_profile(
            Addr::new(10, 0, 0, 0).block24(),
            HostProfile {
                density: 1.0,
                churn: 0.0,
                ..HostProfile::default()
            },
        );
        net
    }

    fn lasthop_of(net: &Network, dst: Addr) -> Addr {
        let d = net.send(probe(net, dst, 2)).unwrap();
        let (ip, t) = parse_response(&d);
        assert_eq!(t, ICMP_TIME_EXCEEDED);
        ip.src
    }

    #[test]
    fn lb_resize_collapses_the_fan() {
        let mut net = fan2();
        net.set_dynamics(DynamicsConfig {
            period: 1_000_000,
            events: vec![DynamicsEvent::LbResize {
                router: RouterId(0),
                at_epoch: 0,
                width: 1,
            }],
            netem: None,
        });
        for host in 1..32u8 {
            assert_eq!(
                lasthop_of(&net, Addr::new(10, 0, 0, host)),
                Addr::new(10, 255, 0, 2),
                "width-1 clamp pins every destination to the first hop"
            );
        }
        assert!(net.net_stats().dyn_resizes > 0);
    }

    #[test]
    fn next_hop_rewrite_remaps_some_flows() {
        let base = fan2();
        let before: Vec<Addr> = (1..32u8)
            .map(|h| lasthop_of(&base, Addr::new(10, 0, 0, h)))
            .collect();
        let mut net = fan2();
        net.set_dynamics(DynamicsConfig {
            period: 1_000_000,
            events: vec![DynamicsEvent::NextHopRewrite {
                router: RouterId(0),
                at_epoch: 0,
            }],
            netem: None,
        });
        let after: Vec<Addr> = (1..32u8)
            .map(|h| lasthop_of(&net, Addr::new(10, 0, 0, h)))
            .collect();
        assert_ne!(before, after, "churn must remap at least one flow");
        assert!(net.net_stats().dyn_rewrites > 0);
    }

    #[test]
    fn address_reuse_sources_errors_upstream() {
        let mut net = chain();
        net.set_dynamics(DynamicsConfig {
            period: 1_000_000,
            events: vec![DynamicsEvent::AddressReuse {
                router: RouterId(2),
                at_epoch: 0,
                alias: Addr::new(10, 255, 0, 1),
            }],
            netem: None,
        });
        let dst = Addr::new(10, 0, 0, 5);
        let d = net.send(probe(&net, dst, 3)).unwrap();
        let (ip, t) = parse_response(&d);
        assert_eq!(t, ICMP_TIME_EXCEEDED);
        assert_eq!(
            ip.src,
            Addr::new(10, 255, 0, 1),
            "error reuses the upstream address: an apparent cycle"
        );
        assert!(net.net_stats().dyn_addr_reuses > 0);
    }

    #[test]
    fn false_diamond_alternates_reply_sources() {
        let mut net = chain();
        let alias = Addr::new(10, 255, 0, 9);
        net.set_dynamics(DynamicsConfig {
            period: 1_000_000,
            events: vec![DynamicsEvent::FalseDiamond {
                router: RouterId(2),
                at_epoch: 0,
                alias,
            }],
            netem: None,
        });
        let dst = Addr::new(10, 0, 0, 5);
        let mut seen = std::collections::HashSet::new();
        for seq in 0..32u16 {
            let p = encode_probe(net.vantage_addr(), dst, 3, 7, seq, 0xAAAA, seq);
            let d = net.send(p).unwrap();
            let (ip, t) = parse_response(&d);
            assert_eq!(t, ICMP_TIME_EXCEEDED);
            seen.insert(ip.src);
        }
        assert!(seen.contains(&alias), "phantom interface appears");
        assert!(seen.contains(&Addr::new(10, 255, 0, 3)), "real one too");
        assert!(net.net_stats().dyn_false_diamonds > 0);
    }

    #[test]
    fn netem_delays_are_deterministic_and_additive() {
        let base = chain();
        let dst = Addr::new(10, 0, 0, 5);
        let undisturbed = base.send(probe(&base, dst, 64)).unwrap().rtt_us;
        let mut net = chain();
        net.set_dynamics(DynamicsConfig {
            period: 0,
            events: Vec::new(),
            netem: Some(crate::dynamics::NetemSpec {
                delay_us: 500,
                jitter_us: 100,
                reorder_prob: 0.0,
                duplicate_prob: 0.0,
            }),
        });
        let a = net.send(probe(&net, dst, 64)).unwrap().rtt_us;
        let b = net.send(probe(&net, dst, 64)).unwrap().rtt_us;
        assert_eq!(a, b, "same probe bytes, same perturbed rtt");
        assert!(a >= undisturbed + 500, "rtt {a} vs base {undisturbed}");
        assert!(a <= undisturbed + 600, "jitter bounded by the knob");
        assert!(net.net_stats().netem_delays > 0);
    }

    #[test]
    fn empty_schedule_is_byte_identical_to_static_world() {
        let baseline = chain();
        let mut net = chain();
        net.set_dynamics(DynamicsConfig {
            period: 8,
            events: Vec::new(),
            netem: None,
        });
        let dst = Addr::new(10, 0, 0, 5);
        for seq in 0..64u16 {
            for ttl in [2u8, 3, 64] {
                let p = encode_probe(baseline.vantage_addr(), dst, ttl, 7, seq, 0xAAAA, seq);
                let want = baseline.send(p.clone()).unwrap();
                let got = net.send(p).unwrap();
                assert_eq!(want.response, got.response);
                assert_eq!(want.rtt_us, got.rtt_us);
            }
        }
        assert_eq!(net.net_stats().total_dynamics(), 0);
    }
}
