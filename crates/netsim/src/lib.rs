//! # netsim — a deterministic simulated IPv4 internet
//!
//! This crate is the measurement substrate for the Hobbit reproduction
//! (Lee & Spring, *Identifying and Aggregating Homogeneous IPv4 /24 Blocks
//! with Hobbit*, IMC 2016). The paper probes the live internet from a
//! vantage point at UMD; this crate replaces the live internet with a
//! synthetic one that produces the same *observable* phenomena:
//!
//! * longest-prefix-match route tables whose entries are hierarchical
//!   (pairwise disjoint or nested) — the invariant Hobbit exploits;
//! * ECMP load balancing — per-flow, per-destination, per-source/dest and
//!   per-packet — that makes naive route comparison useless;
//! * ICMP semantics: echo request/reply with OS default TTLs, Time Exceeded
//!   from routers (or silence: anonymous routers, rate limiting);
//! * host populations with density, availability churn, and latency
//!   personalities (including cellular radio wake-up delays).
//!
//! The only interface measurement code gets is [`topology::Network::send`]:
//! ICMP bytes in, optional ICMP bytes out, plus an RTT — the same
//! information a raw socket would give a real prober. Scenario builders in
//! [`build`] additionally return ground truth so tests can score inferences.
//!
//! ```
//! use netsim::build::{build, ScenarioConfig};
//! use netsim::forward::encode_probe;
//!
//! let mut scenario = build(ScenarioConfig::tiny(42));
//! let vantage = scenario.network.vantage_addr();
//! let dst = scenario.network.allocated_blocks()[0].addr(10);
//! let probe = encode_probe(vantage, dst, 64, 1, 1, 0xBEEF, 0);
//! let outcome = scenario.network.send(probe).unwrap();
//! // `outcome.response` is an echo reply, a Time Exceeded, or None.
//! ```

#![warn(missing_docs)]

pub mod addr;
pub mod build;
pub mod concurrent;
pub mod dynamics;
pub mod fault;
pub mod forward;
pub mod hash;
pub mod host;
pub mod roster;
pub mod route;
pub mod rtt;
pub mod stats;
pub mod topology;
pub mod wire;

pub use addr::{Addr, Block24, Prefix};
pub use build::{build, GroundTruth, Scenario, ScenarioConfig};
pub use concurrent::{SharedNetwork, WarmedSet};
pub use dynamics::{DynamicsConfig, DynamicsEvent, NetemSpec};
pub use fault::{FaultConfig, NetworkStats};
pub use forward::{encode_probe, Delivery, SendError, TIMEOUT_US};
pub use host::{HostKind, HostProfile};
pub use route::{LbPolicy, RouterId};
pub use topology::Network;
