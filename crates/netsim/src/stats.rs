//! Ground-truth summary statistics for scenario inspection and debugging.

use crate::build::{GroundTruth, Scenario};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Summary of a scenario's ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TruthStats {
    /// Allocated /24 blocks.
    pub blocks: usize,
    /// Genuinely homogeneous blocks.
    pub homogeneous: usize,
    /// Split (heterogeneous) blocks.
    pub heterogeneous: usize,
    /// Colocation sites (PoPs), excluding per-customer sub-allocations.
    pub pops: usize,
    /// PoPs whose last-hop routers never answer.
    pub unresponsive_pops: usize,
    /// PoPs serving cellular devices.
    pub cellular_pops: usize,
    /// Table-5 style big sites.
    pub big_sites: usize,
    /// Blocks per AS, by organization name.
    pub blocks_per_as: BTreeMap<String, usize>,
    /// Distribution of last-hop fan-out across ordinary PoPs.
    pub lh_fanout: BTreeMap<usize, usize>,
    /// Mean /24s per ordinary PoP.
    pub mean_pop_size: f64,
}

/// Compute the summary.
pub fn truth_stats(truth: &GroundTruth) -> TruthStats {
    let homogeneous = truth.blocks.values().filter(|t| t.homogeneous).count();
    let ordinary_pops: Vec<_> = truth.pops.iter().filter(|p| !p.sub_allocation).collect();
    let mut blocks_per_as: BTreeMap<String, usize> = BTreeMap::new();
    for t in truth.blocks.values() {
        *blocks_per_as
            .entry(truth.as_list[t.as_idx as usize].name.to_string())
            .or_default() += 1;
    }
    let mut lh_fanout: BTreeMap<usize, usize> = BTreeMap::new();
    for p in &ordinary_pops {
        *lh_fanout.entry(p.lasthop_addrs.len()).or_default() += 1;
    }
    let mut pop_sizes: BTreeMap<u32, usize> = BTreeMap::new();
    for t in truth.blocks.values().filter(|t| t.homogeneous) {
        *pop_sizes.entry(t.pop).or_default() += 1;
    }
    let mean_pop_size = if pop_sizes.is_empty() {
        0.0
    } else {
        pop_sizes.values().sum::<usize>() as f64 / pop_sizes.len() as f64
    };
    TruthStats {
        blocks: truth.blocks.len(),
        homogeneous,
        heterogeneous: truth.blocks.len() - homogeneous,
        pops: ordinary_pops.len(),
        unresponsive_pops: ordinary_pops.iter().filter(|p| !p.responsive).count(),
        cellular_pops: ordinary_pops.iter().filter(|p| p.cellular).count(),
        big_sites: ordinary_pops.iter().filter(|p| p.big_site).count(),
        blocks_per_as,
        lh_fanout,
        mean_pop_size,
    }
}

/// Summary of a scenario's network fabric.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FabricStats {
    /// Total routers.
    pub routers: usize,
    /// Routers that never answer TTL-exceeded.
    pub anonymous_routers: usize,
    /// Routers with ICMP rate limiting.
    pub rate_limited_routers: usize,
    /// Routers with a second (alternating) interface.
    pub alt_interface_routers: usize,
    /// Total installed route entries.
    pub route_entries: usize,
    /// Registered vantage points.
    pub vantages: usize,
}

/// Compute the fabric summary.
pub fn fabric_stats(scenario: &Scenario) -> FabricStats {
    let net = &scenario.network;
    let mut anonymous = 0;
    let mut rate_limited = 0;
    let mut alt = 0;
    let mut entries = 0;
    for i in 0..net.router_count() {
        let r = net.router(crate::route::RouterId(i as u32));
        if !r.responsive {
            anonymous += 1;
        }
        if r.icmp_loss > 0.0 {
            rate_limited += 1;
        }
        if r.alt_addr.is_some() {
            alt += 1;
        }
        entries += r.table.len();
    }
    FabricStats {
        routers: net.router_count(),
        anonymous_routers: anonymous,
        rate_limited_routers: rate_limited,
        alt_interface_routers: alt,
        route_entries: entries,
        vantages: net.vantages().len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build, ScenarioConfig};

    #[test]
    fn truth_stats_are_consistent() {
        let s = build(ScenarioConfig::tiny(42));
        let stats = truth_stats(&s.truth);
        assert_eq!(stats.blocks, stats.homogeneous + stats.heterogeneous);
        assert_eq!(stats.blocks, s.truth.blocks.len());
        assert!(stats.pops > 0);
        assert!(stats.mean_pop_size >= 1.0);
        let as_total: usize = stats.blocks_per_as.values().sum();
        assert_eq!(as_total, stats.blocks);
        let fan_total: usize = stats.lh_fanout.values().sum();
        assert_eq!(fan_total, stats.pops);
    }

    #[test]
    fn fabric_stats_count_features() {
        let s = build(ScenarioConfig::tiny(42));
        let stats = fabric_stats(&s);
        assert_eq!(stats.routers, s.network.router_count());
        assert!(stats.anonymous_routers > 0, "unresponsive PoPs exist");
        assert!(stats.alt_interface_routers > 0, "alt interfaces exist");
        assert!(stats.route_entries > stats.routers / 2);
        assert_eq!(stats.vantages, 1);
    }
}
