//! Deterministic fault injection: seeded per-link packet loss and per-router
//! ICMP token-bucket rate limiting.
//!
//! Real measurement campaigns never see a perfect network: forward paths
//! drop packets, and routers throttle the ICMP errors traceroute depends on
//! (Augustin et al. document how silently rate-limited ICMP corrupts
//! topology inference). A [`FaultConfig`] turns both phenomena on for a
//! [`Network`](crate::Network) — *deterministically*:
//!
//! * **Link loss** is a stateless Bernoulli draw keyed by the scenario seed,
//!   the link (current router and hop index), and the per-probe nonce that
//!   [`Network::send`](crate::Network::send) already derives from the wire
//!   bytes. The same probe bytes are lost (or not) on the same link no
//!   matter which thread sends them or when. Retries carry fresh sequence
//!   numbers and IP idents, so they are independent draws.
//! * **ICMP rate limiting** is a token bucket per *probe stream* — keyed by
//!   `(router, icmp ident, destination /24)` — rather than per router
//!   globally. A global bucket would make admission depend on how worker
//!   threads interleave; a per-stream bucket sees exactly the arrivals of
//!   one sequential prober, so admission is a pure function of the stream
//!   prefix and classification stays byte-identical at any thread count.
//!
//! With refill rate `r` per arrival and any starting level, a stream sees at
//! most `ceil(1/r) - 1` consecutive denials — so a prober with enough
//! retries *provably* recovers from rate limiting (the loss-resilience the
//! probe crate's backoff layer builds on).

use crate::hash::mix2;
use obs::{Counter, Recorder};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Default token-bucket capacity (burst size), in ICMP replies.
pub const DEFAULT_ICMP_BURST: f32 = 4.0;

/// Fault-injection knobs for a network. Inactive by default: the pristine
/// substrate the rest of the pipeline was calibrated on.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that any one router-to-router (or router-to-host) link
    /// transition silently drops the probe. Compounds per hop.
    pub link_loss: f32,
    /// Token-bucket refill per arriving probe. `Some(r)` switches *every*
    /// responsive router (last-hop routers included) to token-bucket ICMP
    /// admission; routers the scenario already flags with `icmp_loss > 0`
    /// trade their Bernoulli suppression for the bucket. `None` keeps the
    /// legacy behavior: only flagged routers drop, via Bernoulli.
    pub icmp_rate: Option<f32>,
    /// Token-bucket capacity (how many back-to-back replies a router sends
    /// before throttling to the refill rate).
    pub icmp_burst: f32,
}

impl FaultConfig {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultConfig {
            link_loss: 0.0,
            icmp_rate: None,
            icmp_burst: DEFAULT_ICMP_BURST,
        }
    }

    /// A lossy network: `link_loss` per-link drop probability plus ICMP
    /// token buckets refilling at `icmp_rate` tokens per arrival.
    pub fn lossy(link_loss: f32, icmp_rate: f32) -> Self {
        FaultConfig {
            link_loss,
            icmp_rate: Some(icmp_rate),
            icmp_burst: DEFAULT_ICMP_BURST,
        }
    }

    /// Whether any fault mechanism is switched on.
    pub fn is_active(&self) -> bool {
        self.link_loss > 0.0 || self.icmp_rate.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// Number of lock shards; a power of two, mirroring
/// [`WarmedSet`](crate::concurrent::WarmedSet).
const SHARDS: usize = 64;

/// The identity of one rate-limited probe stream:
/// `(router, icmp ident, destination /24)`.
type StreamKey = (u32, u16, u32);

/// Sharded per-stream token buckets (see the module docs for why admission
/// is per stream, not per router).
pub(crate) struct TokenBuckets {
    shards: Vec<RwLock<HashMap<StreamKey, f32>>>,
}

impl TokenBuckets {
    pub(crate) fn new() -> Self {
        TokenBuckets {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &StreamKey) -> &RwLock<HashMap<StreamKey, f32>> {
        let h = mix2(((key.0 as u64) << 32) | key.2 as u64, 0xB0C4 ^ key.1 as u64);
        &self.shards[(h as usize) & (SHARDS - 1)]
    }

    /// One probe arrives on a stream: refill by `rate` (capped at `burst`),
    /// then admit — consuming a token — if a whole token is available.
    /// A fresh stream starts with a full bucket.
    pub(crate) fn admit(&self, key: StreamKey, rate: f32, burst: f32) -> bool {
        let mut map = self.shard(&key).write();
        let tokens = map.entry(key).or_insert(burst);
        *tokens = (*tokens + rate).min(burst);
        if *tokens >= 1.0 {
            *tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Forget all bucket state (epoch or fault-config change).
    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }
}

impl Default for TokenBuckets {
    fn default() -> Self {
        TokenBuckets::new()
    }
}

impl Clone for TokenBuckets {
    fn clone(&self) -> Self {
        TokenBuckets {
            shards: self
                .shards
                .iter()
                .map(|s| RwLock::new(s.read().clone()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for TokenBuckets {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenBuckets")
            .field("streams", &self.len())
            .finish()
    }
}

/// Thread-safe fault accounting (interior mutability, like the network's
/// carried-probe counter). The counters are [`obs::Counter`] handles so a
/// recorder can intern them by name; until one is attached they are
/// detached free-standing atomics.
#[derive(Debug, Default)]
pub(crate) struct FaultCounters {
    /// Probes dropped in flight by injected link loss.
    pub(crate) link_drops: Counter,
    /// ICMP errors suppressed by a token bucket.
    pub(crate) rate_limited_drops: Counter,
    /// ICMP errors suppressed by legacy Bernoulli `icmp_loss`.
    pub(crate) icmp_loss_drops: Counter,
}

impl FaultCounters {
    /// Re-home the counters in `rec`'s registry (carrying current values
    /// over), so fault drops show up in the exported metrics document.
    pub(crate) fn attach(&mut self, rec: &dyn Recorder) {
        for (name, c) in [
            ("net.link_drops", &mut self.link_drops),
            ("net.rate_limited_drops", &mut self.rate_limited_drops),
            ("net.icmp_loss_drops", &mut self.icmp_loss_drops),
        ] {
            let interned = rec.counter(name);
            interned.add(c.get());
            *c = interned;
        }
    }
}

impl Clone for FaultCounters {
    fn clone(&self) -> Self {
        FaultCounters {
            link_drops: self.link_drops.fork(),
            rate_limited_drops: self.rate_limited_drops.fork(),
            icmp_loss_drops: self.icmp_loss_drops.fork(),
        }
    }
}

/// A snapshot of the network's probe and fault accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    /// Probe packets the network carried.
    pub probes_carried: u64,
    /// Probes dropped in flight by injected link loss.
    pub link_drops: u64,
    /// ICMP errors suppressed by token-bucket rate limiting.
    pub rate_limited_drops: u64,
    /// ICMP errors suppressed by legacy Bernoulli `icmp_loss`.
    pub icmp_loss_drops: u64,
    /// Probe-hops routed with a churned (re-salted) next-hop selection.
    #[serde(default)]
    pub dyn_rewrites: u64,
    /// Probe-hops whose ECMP group was clamped by a load-balancer resize.
    #[serde(default)]
    pub dyn_resizes: u64,
    /// Probes caught in a transient forwarding loop.
    #[serde(default)]
    pub dyn_loops: u64,
    /// ICMP errors sourced from a reused upstream address.
    #[serde(default)]
    pub dyn_addr_reuses: u64,
    /// ICMP errors sourced from a phantom false-diamond interface.
    #[serde(default)]
    pub dyn_false_diamonds: u64,
    /// Replies delayed by netem perturbation.
    #[serde(default)]
    pub netem_delays: u64,
    /// Replies arriving a full jitter window late ("reordered").
    #[serde(default)]
    pub netem_reorders: u64,
    /// Replies duplicated on the wire.
    #[serde(default)]
    pub netem_duplicates: u64,
}

impl NetworkStats {
    /// Total probes lost to any fault mechanism.
    pub fn total_drops(&self) -> u64 {
        self.link_drops + self.rate_limited_drops + self.icmp_loss_drops
    }

    /// Total probe-level dynamics applications (netem excluded).
    pub fn total_dynamics(&self) -> u64 {
        self.dyn_rewrites
            + self.dyn_resizes
            + self.dyn_loops
            + self.dyn_addr_reuses
            + self.dyn_false_diamonds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!FaultConfig::none().is_active());
        assert!(!FaultConfig::default().is_active());
        assert!(FaultConfig::lossy(0.02, 0.5).is_active());
        assert!(FaultConfig {
            link_loss: 0.01,
            ..FaultConfig::none()
        }
        .is_active());
    }

    #[test]
    fn bucket_admits_burst_then_throttles() {
        let b = TokenBuckets::new();
        let key = (7, 0x4001, 0x0A0101);
        // Full bucket: the first `burst` arrivals all pass.
        for i in 0..4 {
            assert!(b.admit(key, 0.0, 4.0), "burst arrival {i}");
        }
        // Empty bucket, zero refill: everything else is denied.
        assert!(!b.admit(key, 0.0, 4.0));
        assert!(!b.admit(key, 0.0, 4.0));
    }

    #[test]
    fn bucket_bounds_consecutive_denials() {
        // With refill 0.5 a stream can never see 3 denials in a row: two
        // denied arrivals refill a whole token.
        let b = TokenBuckets::new();
        let key = (1, 2, 3);
        let mut consecutive = 0;
        let mut worst = 0;
        for _ in 0..1000 {
            if b.admit(key, 0.5, 4.0) {
                consecutive = 0;
            } else {
                consecutive += 1;
                worst = worst.max(consecutive);
            }
        }
        assert!(worst <= 2, "saw {worst} consecutive denials");
    }

    #[test]
    fn streams_are_independent() {
        let b = TokenBuckets::new();
        let a = (1, 10, 100);
        for _ in 0..8 {
            b.admit(a, 0.0, 4.0);
        }
        assert!(!b.admit(a, 0.0, 4.0), "stream a exhausted");
        // A different ident (or router, or block) is a fresh bucket.
        assert!(b.admit((1, 11, 100), 0.0, 4.0));
        assert!(b.admit((2, 10, 100), 0.0, 4.0));
        assert!(b.admit((1, 10, 101), 0.0, 4.0));
    }

    #[test]
    fn clear_refills_every_bucket() {
        let b = TokenBuckets::new();
        let key = (9, 9, 9);
        for _ in 0..8 {
            b.admit(key, 0.0, 2.0);
        }
        assert!(!b.admit(key, 0.0, 2.0));
        b.clear();
        assert!(b.admit(key, 0.0, 2.0));
    }

    #[test]
    fn stats_sum_drops() {
        let s = NetworkStats {
            probes_carried: 100,
            link_drops: 3,
            rate_limited_drops: 2,
            icmp_loss_drops: 1,
            dyn_loops: 4,
            ..NetworkStats::default()
        };
        assert_eq!(s.total_drops(), 6);
        assert_eq!(s.total_dynamics(), 4);
    }
}
