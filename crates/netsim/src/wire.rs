//! Wire formats for the probe packets the simulator exchanges.
//!
//! The simulator could pass Rust structs around directly, but encoding probes
//! and responses through real ICMP wire formats keeps the measurement tools
//! honest: the prober only learns what a real prober could parse out of the
//! bytes on the wire (response TTLs, quoted headers in Time Exceeded
//! messages, checksum-carried flow identifiers — the Paris trick).

use crate::addr::Addr;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// ICMP message types we model.
pub const ICMP_ECHO_REPLY: u8 = 0;
/// ICMP Destination Unreachable.
pub const ICMP_DEST_UNREACH: u8 = 3;
/// ICMP Echo Request.
pub const ICMP_ECHO_REQUEST: u8 = 8;
/// ICMP Time Exceeded (TTL expired in transit).
pub const ICMP_TIME_EXCEEDED: u8 = 11;

/// Minimal IPv4 header as carried by the simulator (no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Time to live.
    pub ttl: u8,
    /// Protocol (1 = ICMP; the only protocol the simulator forwards).
    pub protocol: u8,
    /// IP identification field (part of some routers' hash input).
    pub ident: u16,
}

/// Fixed size of our serialized IPv4 header (standard 20 bytes, no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// Fixed size of an ICMP echo header.
pub const ICMP_ECHO_HEADER_LEN: usize = 8;

impl Ipv4Header {
    /// Serialize into `buf` (standard layout, version/IHL fixed, no options).
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(0); // total length backfilled by caller if needed
        buf.put_u16(self.ident);
        buf.put_u16(0); // flags/fragment offset
        buf.put_u8(self.ttl);
        buf.put_u8(self.protocol);
        buf.put_u16(0); // header checksum (recomputed below)
        buf.put_u32(self.src.0);
        buf.put_u32(self.dst.0);
        // Backfill the header checksum over the 20 bytes just written.
        let start = buf.len() - IPV4_HEADER_LEN;
        let sum = internet_checksum(&buf[start..]);
        buf[start + 10] = (sum >> 8) as u8;
        buf[start + 11] = (sum & 0xff) as u8;
    }

    /// Parse a header from the front of `buf`, validating the checksum.
    pub fn decode(buf: &mut Bytes) -> Result<Self, WireError> {
        if buf.remaining() < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let header = buf.slice(..IPV4_HEADER_LEN);
        if internet_checksum(&header) != 0 {
            return Err(WireError::BadChecksum);
        }
        let vihl = buf.get_u8();
        if vihl != 0x45 {
            return Err(WireError::BadVersion(vihl));
        }
        buf.advance(1); // DSCP/ECN
        buf.advance(2); // total length
        let ident = buf.get_u16();
        buf.advance(2); // flags/frag
        let ttl = buf.get_u8();
        let protocol = buf.get_u8();
        buf.advance(2); // checksum (validated above)
        let src = Addr(buf.get_u32());
        let dst = Addr(buf.get_u32());
        Ok(Ipv4Header {
            src,
            dst,
            ttl,
            protocol,
            ident,
        })
    }
}

/// An ICMP echo request/reply header.
///
/// Paris traceroute keeps the ICMP *checksum* constant across probes so that
/// per-flow load balancers (which hash the first four bytes of the transport
/// header) see a stable flow; it varies the checksum deliberately to explore
/// siblings. We model the checksum as derived from id/seq/payload exactly as
/// on the wire, so the prober must do the same bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpEcho {
    /// Echo identifier (ties replies to the probing process).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Two payload bytes the prober tunes to force a chosen checksum.
    pub tweak: u16,
}

impl IcmpEcho {
    /// The ICMP checksum this echo message will carry on the wire.
    ///
    /// This is the "flow identifier" a per-flow load balancer observes.
    pub fn wire_checksum(&self, icmp_type: u8) -> u16 {
        let mut buf = BytesMut::with_capacity(ICMP_ECHO_HEADER_LEN + 2);
        self.encode_with_type(icmp_type, &mut buf);
        u16::from_be_bytes([buf[2], buf[3]])
    }

    /// Choose `tweak` so that the encoded checksum equals `target`.
    ///
    /// The internet checksum is the one's-complement sum, so solving for a
    /// payload word that produces a target checksum is exact arithmetic.
    ///
    /// # Panics
    /// Panics if `target == 0xffff`: a checksum of `0xffff` would require the
    /// one's-complement sum to be `+0`, which a non-zero message never
    /// produces (RFC 1071 arithmetic yields `-0` = `0xffff` instead, which
    /// folds to checksum `0x0000`). Flow-label generators must stay within
    /// `0x0000..=0xfffe`.
    pub fn with_checksum(ident: u16, seq: u16, target: u16) -> IcmpEcho {
        assert!(
            target != 0xffff,
            "checksum 0xffff is unrepresentable; use labels in 0..=0xfffe"
        );
        // checksum = !(type/code + ident + seq + tweak)  (one's complement sum)
        // We need tweak = !target - (type/code word) - ident - seq  in
        // one's-complement arithmetic. type=8, code=0 => word 0x0800.
        let want = !target;
        let fixed = ones_add(ones_add(0x0800, ident), seq);
        let tweak = ones_sub(want, fixed);
        let echo = IcmpEcho { ident, seq, tweak };
        debug_assert_eq!(echo.wire_checksum(ICMP_ECHO_REQUEST), target);
        echo
    }

    fn encode_with_type(&self, icmp_type: u8, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(icmp_type);
        buf.put_u8(0); // code
        buf.put_u16(0); // checksum, backfilled
        buf.put_u16(self.ident);
        buf.put_u16(self.seq);
        buf.put_u16(self.tweak);
        let sum = internet_checksum(&buf[start..]);
        buf[start + 2] = (sum >> 8) as u8;
        buf[start + 3] = (sum & 0xff) as u8;
    }

    /// Serialize as an echo request.
    pub fn encode_request(&self, buf: &mut BytesMut) {
        self.encode_with_type(ICMP_ECHO_REQUEST, buf);
    }

    /// Serialize as an echo reply.
    pub fn encode_reply(&self, buf: &mut BytesMut) {
        self.encode_with_type(ICMP_ECHO_REPLY, buf);
    }

    /// Parse an echo message; returns `(icmp_type, echo)`.
    pub fn decode(buf: &mut Bytes) -> Result<(u8, IcmpEcho), WireError> {
        if buf.remaining() < ICMP_ECHO_HEADER_LEN + 2 {
            return Err(WireError::Truncated);
        }
        let msg = buf.slice(..ICMP_ECHO_HEADER_LEN + 2);
        if internet_checksum(&msg) != 0 {
            return Err(WireError::BadChecksum);
        }
        let icmp_type = buf.get_u8();
        buf.advance(1); // code
        buf.advance(2); // checksum
        let ident = buf.get_u16();
        let seq = buf.get_u16();
        let tweak = buf.get_u16();
        Ok((icmp_type, IcmpEcho { ident, seq, tweak }))
    }
}

/// ICMP error message (Time Exceeded / Destination Unreachable) quoting the
/// offending packet's IP header plus the first 8 bytes of its payload, as
/// RFC 792 requires. Traceroute relies on the quote to match responses to
/// probes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpError {
    /// ICMP type: `ICMP_TIME_EXCEEDED` or `ICMP_DEST_UNREACH`.
    pub icmp_type: u8,
    /// Quoted IPv4 header of the probe that triggered the error.
    pub quoted: Ipv4Header,
    /// Quoted first 8 bytes of the probe's ICMP payload.
    pub quoted_echo: IcmpEcho,
    /// The quoted echo's type byte.
    pub quoted_type: u8,
}

impl IcmpError {
    /// Serialize: type/code/checksum/unused + quoted IP header + 8 bytes.
    pub fn encode(&self, buf: &mut BytesMut) {
        let start = buf.len();
        buf.put_u8(self.icmp_type);
        buf.put_u8(0); // code
        buf.put_u16(0); // checksum backfilled
        buf.put_u32(0); // unused
        self.quoted.encode(buf);
        // First 8 bytes of the quoted ICMP message (header only, minus tweak).
        let mut inner = BytesMut::new();
        self.quoted_echo
            .encode_with_type(self.quoted_type, &mut inner);
        buf.put_slice(&inner[..ICMP_ECHO_HEADER_LEN]);
        let sum = internet_checksum(&buf[start..]);
        buf[start + 2] = (sum >> 8) as u8;
        buf[start + 3] = (sum & 0xff) as u8;
    }

    /// Parse an ICMP error message and its quoted probe.
    pub fn decode(buf: &mut Bytes) -> Result<IcmpError, WireError> {
        let need = 8 + IPV4_HEADER_LEN + ICMP_ECHO_HEADER_LEN;
        if buf.remaining() < need {
            return Err(WireError::Truncated);
        }
        if internet_checksum(&buf.slice(..need)) != 0 {
            return Err(WireError::BadChecksum);
        }
        let icmp_type = buf.get_u8();
        buf.advance(1); // code
        buf.advance(2); // checksum
        buf.advance(4); // unused
        let mut quoted_buf = buf.clone();
        let quoted = Ipv4Header::decode(&mut quoted_buf)?;
        buf.advance(IPV4_HEADER_LEN);
        let quoted_type = buf[0];
        let ident = u16::from_be_bytes([buf[4], buf[5]]);
        let seq = u16::from_be_bytes([buf[6], buf[7]]);
        buf.advance(ICMP_ECHO_HEADER_LEN);
        Ok(IcmpError {
            icmp_type,
            quoted,
            quoted_echo: IcmpEcho {
                ident,
                seq,
                tweak: 0,
            },
            quoted_type,
        })
    }
}

/// Decoding failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Not enough bytes for the claimed structure.
    Truncated,
    /// Checksum mismatch.
    BadChecksum,
    /// Unsupported IP version / header length byte.
    BadVersion(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::BadChecksum => write!(f, "bad checksum"),
            WireError::BadVersion(b) => write!(f, "unsupported version/IHL byte {b:#x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// RFC 1071 internet checksum over `data` (16-bit one's-complement sum).
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// One's-complement 16-bit addition.
fn ones_add(a: u16, b: u16) -> u16 {
    let s = a as u32 + b as u32;
    ((s & 0xffff) + (s >> 16)) as u16
}

/// One's-complement 16-bit subtraction.
fn ones_sub(a: u16, b: u16) -> u16 {
    ones_add(a, !b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> Ipv4Header {
        Ipv4Header {
            src: Addr::new(10, 0, 0, 1),
            dst: Addr::new(192, 0, 2, 33),
            ttl: 7,
            protocol: 1,
            ident: 0xBEEF,
        }
    }

    #[test]
    fn ipv4_header_roundtrip() {
        let h = header();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), IPV4_HEADER_LEN);
        let mut bytes = buf.freeze();
        let parsed = Ipv4Header::decode(&mut bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn ipv4_header_detects_corruption() {
        let mut buf = BytesMut::new();
        header().encode(&mut buf);
        buf[8] ^= 0xff; // flip the TTL byte
        let mut bytes = buf.freeze();
        assert_eq!(Ipv4Header::decode(&mut bytes), Err(WireError::BadChecksum));
    }

    #[test]
    fn echo_roundtrip() {
        let e = IcmpEcho {
            ident: 42,
            seq: 7,
            tweak: 0x1234,
        };
        let mut buf = BytesMut::new();
        e.encode_request(&mut buf);
        let (t, parsed) = IcmpEcho::decode(&mut buf.freeze()).unwrap();
        assert_eq!(t, ICMP_ECHO_REQUEST);
        assert_eq!(parsed, e);
    }

    #[test]
    fn echo_checksum_targeting_is_exact() {
        // The Paris trick: for any target checksum there is a payload tweak
        // that produces it.
        for target in [0x0000u16, 0x0001, 0x7fff, 0x8000, 0xfffe, 0xABCD] {
            let e = IcmpEcho::with_checksum(9, 1, target);
            assert_eq!(
                e.wire_checksum(ICMP_ECHO_REQUEST),
                target,
                "target {target:#x}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unrepresentable")]
    fn echo_checksum_all_ones_rejected() {
        let _ = IcmpEcho::with_checksum(9, 1, 0xffff);
    }

    #[test]
    fn icmp_error_roundtrip() {
        let err = IcmpError {
            icmp_type: ICMP_TIME_EXCEEDED,
            quoted: header(),
            quoted_echo: IcmpEcho {
                ident: 3,
                seq: 9,
                tweak: 0,
            },
            quoted_type: ICMP_ECHO_REQUEST,
        };
        let mut buf = BytesMut::new();
        err.encode(&mut buf);
        let parsed = IcmpError::decode(&mut buf.freeze()).unwrap();
        assert_eq!(parsed.icmp_type, ICMP_TIME_EXCEEDED);
        assert_eq!(parsed.quoted, err.quoted);
        assert_eq!(parsed.quoted_echo.ident, 3);
        assert_eq!(parsed.quoted_echo.seq, 9);
    }

    #[test]
    fn checksum_rfc1071_examples() {
        // Sum of zero data is 0xffff.
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xffff);
        // Validating data that carries its own checksum yields 0.
        let data = [0x45u8, 0x00, 0x00, 0x14];
        let sum = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&sum.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn checksum_odd_length() {
        let a = internet_checksum(&[1, 2, 3]);
        let b = internet_checksum(&[1, 2, 3, 0]);
        assert_eq!(a, b);
    }
}
