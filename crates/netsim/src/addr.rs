//! IPv4 address and CIDR prefix algebra.
//!
//! The whole reproduction works over plain 32-bit IPv4 addresses. We use
//! newtypes rather than `std::net::Ipv4Addr` because the algorithms in the
//! paper are arithmetic over the integer value (ranges, longest common
//! prefixes, /24 and /26 block indices), and a `u32` newtype keeps those
//! operations explicit and cheap. Conversions to and from `Ipv4Addr` are
//! provided at the edges.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 address as a host-order 32-bit integer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl Addr {
    /// The numerically smallest address, `0.0.0.0`.
    pub const MIN: Addr = Addr(0);
    /// The numerically largest address, `255.255.255.255`.
    pub const MAX: Addr = Addr(u32::MAX);

    /// Build an address from four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// The four octets in network order (most significant first).
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The /24 block this address belongs to.
    pub const fn block24(self) -> Block24 {
        Block24(self.0 >> 8)
    }

    /// Index of this address within its /24 block (the last octet).
    pub const fn host24(self) -> u8 {
        (self.0 & 0xff) as u8
    }

    /// Index (0..4) of the /26 sub-block within the /24 this address is in.
    pub const fn quarter26(self) -> u8 {
        ((self.0 >> 6) & 0x3) as u8
    }

    /// The /31 block this address belongs to (used by the paper's
    /// per-destination load-balancing estimate, Section 2.2).
    pub const fn block31(self) -> u32 {
        self.0 >> 1
    }

    /// The other address of this address's /31 pair.
    pub const fn sibling31(self) -> Addr {
        Addr(self.0 ^ 1)
    }

    /// Length of the longest common prefix with `other`, in bits (0..=32).
    pub const fn lcp_len(self, other: Addr) -> u8 {
        (self.0 ^ other.0).leading_zeros() as u8
    }

    /// Checked successor; `None` past `255.255.255.255`.
    pub fn next(self) -> Option<Addr> {
        self.0.checked_add(1).map(Addr)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({self})")
    }
}

impl From<Ipv4Addr> for Addr {
    fn from(ip: Ipv4Addr) -> Self {
        Addr(u32::from(ip))
    }
}

impl From<Addr> for Ipv4Addr {
    fn from(a: Addr) -> Self {
        Ipv4Addr::from(a.0)
    }
}

/// Errors when parsing addresses or prefixes from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The address portion was not a valid dotted quad.
    BadAddress(String),
    /// The prefix length was missing or not in `0..=32`.
    BadPrefixLen(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadAddress(s) => write!(f, "invalid IPv4 address: {s:?}"),
            ParseError::BadPrefixLen(s) => write!(f, "invalid prefix length: {s:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl FromStr for Addr {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        s.parse::<Ipv4Addr>()
            .map(Addr::from)
            .map_err(|_| ParseError::BadAddress(s.to_string()))
    }
}

/// A CIDR prefix: `base/len` with the base address masked to the prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    base: u32,
    len: u8,
}

impl Prefix {
    /// The whole IPv4 space, `0.0.0.0/0`.
    pub const ALL: Prefix = Prefix { base: 0, len: 0 };

    /// Construct a prefix; host bits of `base` are masked off.
    ///
    /// # Panics
    /// Panics if `len > 32`.
    pub fn new(base: Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} out of range");
        Prefix {
            base: base.0 & Self::mask(len),
            len,
        }
    }

    /// The network mask for a prefix length.
    const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// The (masked) base address.
    pub const fn base(self) -> Addr {
        Addr(self.base)
    }

    /// The prefix length in bits.
    ///
    /// (No `is_empty` counterpart: a prefix always covers ≥ 1 address, so
    /// emptiness is not a meaningful notion here.)
    #[allow(clippy::len_without_is_empty)]
    pub const fn len(self) -> u8 {
        self.len
    }

    /// Number of addresses covered, saturating at `u32::MAX` for /0.
    pub const fn size(self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - self.len)
        }
    }

    /// The numerically first address in the prefix.
    pub const fn first(self) -> Addr {
        Addr(self.base)
    }

    /// The numerically last address in the prefix.
    pub const fn last(self) -> Addr {
        Addr(self.base | !Self::mask(self.len))
    }

    /// Whether `addr` falls inside this prefix.
    pub const fn contains(self, addr: Addr) -> bool {
        addr.0 & Self::mask(self.len) == self.base
    }

    /// Whether this prefix entirely contains `other` (including equality).
    pub const fn contains_prefix(self, other: Prefix) -> bool {
        self.len <= other.len && other.base & Self::mask(self.len) == self.base
    }

    /// Whether the two prefixes share any address.
    pub const fn overlaps(self, other: Prefix) -> bool {
        self.contains_prefix(other) || other.contains_prefix(self)
    }

    /// Split into the two child prefixes of length `len + 1`.
    ///
    /// Returns `None` for a /32, which has no children.
    pub fn split(self) -> Option<(Prefix, Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let len = self.len + 1;
        let lo = Prefix {
            base: self.base,
            len,
        };
        let hi = Prefix {
            base: self.base | (1 << (32 - len)),
            len,
        };
        Some((lo, hi))
    }

    /// The parent prefix of length `len - 1`; `None` for /0.
    pub fn parent(self) -> Option<Prefix> {
        if self.len == 0 {
            return None;
        }
        let len = self.len - 1;
        Some(Prefix {
            base: self.base & Self::mask(len),
            len,
        })
    }

    /// The smallest prefix containing both inputs.
    pub fn join(self, other: Prefix) -> Prefix {
        let common = (self.base ^ other.base).leading_zeros() as u8;
        let len = common.min(self.len).min(other.len);
        Prefix {
            base: self.base & Self::mask(len),
            len,
        }
    }

    /// The longest prefix that covers every address in `addrs`.
    ///
    /// Returns `None` for an empty slice.
    pub fn covering(addrs: &[Addr]) -> Option<Prefix> {
        let (&first, rest) = addrs.split_first()?;
        let mut p = Prefix::new(first, 32);
        for &a in rest {
            p = p.join(Prefix::new(a, 32));
        }
        Some(p)
    }

    /// Iterate over every address in the prefix in ascending order.
    pub fn addrs(self) -> impl Iterator<Item = Addr> {
        let first = self.first().0 as u64;
        let last = self.last().0 as u64;
        (first..=last).map(|v| Addr(v as u32))
    }

    /// Iterate over the /24 blocks covered by this prefix.
    ///
    /// For prefixes longer than /24 this yields the single containing /24.
    pub fn blocks24(self) -> impl Iterator<Item = Block24> {
        let first = self.first().block24().0 as u64;
        let last = self.last().block24().0 as u64;
        (first..=last).map(|v| Block24(v as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base(), self.len)
    }
}

impl fmt::Debug for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Prefix({self})")
    }
}

impl FromStr for Prefix {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| ParseError::BadPrefixLen(s.to_string()))?;
        let base: Addr = addr.parse()?;
        let len: u8 = len
            .parse()
            .map_err(|_| ParseError::BadPrefixLen(s.to_string()))?;
        if len > 32 {
            return Err(ParseError::BadPrefixLen(s.to_string()));
        }
        Ok(Prefix::new(base, len))
    }
}

/// A /24 block identified by the top 24 bits of its addresses.
///
/// This is the paper's unit of measurement. Ordering is numeric, which makes
/// adjacency analysis (Section 5.3) a sort.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Block24(pub u32);

impl Block24 {
    /// The /24 containing `addr`.
    pub const fn of(addr: Addr) -> Self {
        addr.block24()
    }

    /// This block as a `Prefix`.
    pub const fn prefix(self) -> Prefix {
        Prefix {
            base: self.0 << 8,
            len: 24,
        }
    }

    /// The address with the given last octet inside this block.
    pub const fn addr(self, host: u8) -> Addr {
        Addr((self.0 << 8) | host as u32)
    }

    /// First address of the block (`x.y.z.0`).
    pub const fn first(self) -> Addr {
        self.addr(0)
    }

    /// Last address of the block (`x.y.z.255`).
    pub const fn last(self) -> Addr {
        self.addr(255)
    }

    /// Longest common prefix length between two /24 blocks, in bits of the
    /// 24-bit block identifier (0..=23 for distinct blocks, 24 for equal).
    ///
    /// The paper's Figure 7 reports values 0..=23 for adjacent distinct /24s.
    pub const fn lcp_len(self, other: Block24) -> u8 {
        let x = self.0 ^ other.0;
        if x == 0 {
            24
        } else {
            (x.leading_zeros() as u8).saturating_sub(8)
        }
    }

    /// Iterate the four /26 sub-blocks as prefixes.
    pub fn quarters26(self) -> [Prefix; 4] {
        let base = self.0 << 8;
        [0u32, 64, 128, 192].map(|off| Prefix {
            base: base | off,
            len: 26,
        })
    }
}

impl fmt::Display for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.prefix())
    }
}

impl fmt::Debug for Block24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block24({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_roundtrip() {
        let a = Addr::new(192, 168, 1, 200);
        assert_eq!(a.to_string(), "192.168.1.200");
        assert_eq!("192.168.1.200".parse::<Addr>().unwrap(), a);
    }

    #[test]
    fn addr_rejects_garbage() {
        assert!("300.1.1.1".parse::<Addr>().is_err());
        assert!("1.2.3".parse::<Addr>().is_err());
        assert!("".parse::<Addr>().is_err());
    }

    #[test]
    fn octet_order_is_network_order() {
        let a = Addr::new(10, 20, 30, 40);
        assert_eq!(a.octets(), [10, 20, 30, 40]);
        assert_eq!(a.0, 0x0A14_1E28);
    }

    #[test]
    fn block24_and_host() {
        let a = Addr::new(203, 0, 113, 77);
        assert_eq!(a.block24(), Block24(0x00CB_0071));
        assert_eq!(a.host24(), 77);
        assert_eq!(a.block24().addr(77), a);
    }

    #[test]
    fn quarter26_boundaries() {
        let b = Addr::new(1, 2, 3, 0).block24();
        assert_eq!(b.addr(0).quarter26(), 0);
        assert_eq!(b.addr(63).quarter26(), 0);
        assert_eq!(b.addr(64).quarter26(), 1);
        assert_eq!(b.addr(127).quarter26(), 1);
        assert_eq!(b.addr(128).quarter26(), 2);
        assert_eq!(b.addr(191).quarter26(), 2);
        assert_eq!(b.addr(192).quarter26(), 3);
        assert_eq!(b.addr(255).quarter26(), 3);
    }

    #[test]
    fn sibling31_pairs() {
        let a = Addr::new(8, 8, 8, 8);
        assert_eq!(a.sibling31(), Addr::new(8, 8, 8, 9));
        assert_eq!(a.sibling31().sibling31(), a);
        assert_eq!(a.block31(), a.sibling31().block31());
    }

    #[test]
    fn prefix_masks_host_bits() {
        let p = Prefix::new(Addr::new(10, 1, 2, 200), 24);
        assert_eq!(p.base(), Addr::new(10, 1, 2, 0));
        assert_eq!(p.to_string(), "10.1.2.0/24");
    }

    #[test]
    fn prefix_contains_bounds() {
        let p: Prefix = "172.16.0.0/12".parse().unwrap();
        assert!(p.contains(Addr::new(172, 16, 0, 0)));
        assert!(p.contains(Addr::new(172, 31, 255, 255)));
        assert!(!p.contains(Addr::new(172, 32, 0, 0)));
        assert!(!p.contains(Addr::new(172, 15, 255, 255)));
    }

    #[test]
    fn prefix_zero_len_contains_everything() {
        assert!(Prefix::ALL.contains(Addr::MIN));
        assert!(Prefix::ALL.contains(Addr::MAX));
        assert_eq!(Prefix::ALL.size(), u32::MAX);
    }

    #[test]
    fn prefix_split_and_parent() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        let (lo, hi) = p.split().unwrap();
        assert_eq!(lo.to_string(), "192.0.2.0/25");
        assert_eq!(hi.to_string(), "192.0.2.128/25");
        assert_eq!(lo.parent(), Some(p));
        assert_eq!(hi.parent(), Some(p));
        assert!(Prefix::new(Addr::new(1, 1, 1, 1), 32).split().is_none());
        assert!(Prefix::ALL.parent().is_none());
    }

    #[test]
    fn prefix_join_covers_both() {
        let a: Prefix = "10.0.0.0/24".parse().unwrap();
        let b: Prefix = "10.0.1.0/24".parse().unwrap();
        let j = a.join(b);
        assert_eq!(j.to_string(), "10.0.0.0/23");
        assert!(j.contains_prefix(a) && j.contains_prefix(b));
    }

    #[test]
    fn covering_addresses() {
        let addrs = [Addr::new(10, 0, 0, 2), Addr::new(10, 0, 0, 125)];
        let p = Prefix::covering(&addrs).unwrap();
        assert_eq!(p.to_string(), "10.0.0.0/25");
        assert!(Prefix::covering(&[]).is_none());
        let single = Prefix::covering(&[Addr::new(1, 2, 3, 4)]).unwrap();
        assert_eq!(single.len(), 32);
    }

    #[test]
    fn block24_lcp_len() {
        let a = Addr::new(10, 0, 0, 0).block24();
        let b = Addr::new(10, 0, 1, 0).block24();
        assert_eq!(a.lcp_len(b), 23);
        assert_eq!(a.lcp_len(a), 24);
        let c = Addr::new(128, 0, 0, 0).block24();
        assert_eq!(a.lcp_len(c), 0);
    }

    #[test]
    fn prefix_parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Prefix>().is_err());
    }

    #[test]
    fn prefix_addr_iter() {
        let p: Prefix = "198.51.100.0/30".parse().unwrap();
        let v: Vec<Addr> = p.addrs().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0], Addr::new(198, 51, 100, 0));
        assert_eq!(v[3], Addr::new(198, 51, 100, 3));
    }

    #[test]
    fn prefix_blocks24_iter() {
        let p: Prefix = "198.51.100.0/22".parse().unwrap();
        let v: Vec<Block24> = p.blocks24().collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[0].prefix().to_string(), "198.51.100.0/24");
        assert_eq!(v[3].prefix().to_string(), "198.51.103.0/24");
        let q: Prefix = "198.51.100.0/26".parse().unwrap();
        assert_eq!(q.blocks24().count(), 1);
    }
}
