//! Cross-crate observability: a thread-safe metrics registry (counters,
//! gauges, log2-bucketed histograms), hierarchical span timing, and the
//! [`Recorder`] interface every measurement crate reports through.
//!
//! # Design
//!
//! Hot paths never read the wall clock: a [`Counter`] or [`Histogram`]
//! update is one relaxed atomic op on a pre-interned handle. Wall-clock
//! reads happen only at span boundaries ([`SpanTimer`] enter/exit), which
//! sit at phase granularity, not per probe.
//!
//! # Determinism contract
//!
//! Metric *values* — counter totals, gauge levels, histogram bucket tallies
//! — must be byte-identical across thread counts for the same seed. The
//! pipeline guarantees this by deriving every per-probe quantity from
//! scenario state rather than scheduling (see DESIGN.md §10). Quantities
//! that *are* scheduling-dependent — wall-clock durations, work-steal
//! counts, per-worker shares — are reported via [`Recorder::record_span`]
//! and [`Recorder::timing_value`] and exported under the top-level
//! `timing` key, which determinism comparisons strip.

#![warn(missing_docs)]

use parking_lot::Mutex;
use serde_json::{Map, Number, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Version tag of the exported metrics document.
pub const SCHEMA: &str = "hobbit-metrics/v1";

/// Number of histogram buckets: bucket `k` holds values whose bit length
/// is `k`, i.e. `[2^(k-1), 2^k)`, with bucket 0 reserved for zero.
pub const HIST_BUCKETS: usize = 65;

/// Log2 bucket index for a value: 0 for 0, otherwise the bit length
/// (so 1 → 1, 2..=3 → 2, 4..=7 → 3, ...).
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic (handles are cheap and `Send + Sync`); [`Counter::fork`] makes
/// an independent copy with the same current value.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// An independent counter starting at this counter's current value
    /// (deep copy — used by `Clone` impls of structs that snapshot state).
    pub fn fork(&self) -> Self {
        Counter(Arc::new(AtomicU64::new(self.get())))
    }
}

/// A signed gauge (a level, not a total).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Set the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// An independent gauge at this gauge's current level.
    pub fn fork(&self) -> Self {
        let g = Gauge::new();
        g.set(self.get());
        g
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A histogram with fixed log2 buckets (see [`bucket_index`]). Like
/// [`Counter`], cloning shares state and recording is lock-free.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Non-empty buckets as `(bucket index, tally)` pairs, ascending.
    pub fn bucket_counts(&self) -> Vec<(usize, u64)> {
        self.0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }

    /// An independent histogram with the same tallies.
    pub fn fork(&self) -> Self {
        let h = Histogram::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            h.0.buckets[i].store(b.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        h.0.count.store(self.count(), Ordering::Relaxed);
        h.0.sum.store(self.sum(), Ordering::Relaxed);
        h
    }
}

/// The one interface instrumented code reports through.
///
/// `counter`/`gauge`/`histogram` intern a metric by name and return a
/// shared handle; calling twice with the same name must return handles
/// over the same state. Handles should be obtained once, outside hot
/// loops, then bumped lock-free.
///
/// The two `timing` methods record scheduling-dependent data (wall-clock
/// spans, per-worker shares). Implementations that don't track timing can
/// keep the no-op defaults.
pub trait Recorder: Send + Sync {
    /// Intern (or look up) a counter by name.
    fn counter(&self, name: &str) -> Counter;
    /// Intern (or look up) a gauge by name.
    fn gauge(&self, name: &str) -> Gauge;
    /// Intern (or look up) a histogram by name.
    fn histogram(&self, name: &str) -> Histogram;
    /// Record a completed span: `path` is `/`-separated (`run/classify`),
    /// `us` the wall-clock duration. Timing-only — excluded from the
    /// determinism contract.
    fn record_span(&self, _path: &str, _us: u64) {}
    /// Accumulate a scheduling-dependent scalar under the `timing` key
    /// (work-steal counts, per-worker totals). Excluded from the
    /// determinism contract.
    fn timing_value(&self, _path: &str, _v: u64) {}
}

/// A recorder that retains nothing: every call returns a fresh detached
/// handle, so instrumented code pays one atomic op and moves on.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn counter(&self, _name: &str) -> Counter {
        Counter::new()
    }
    fn gauge(&self, _name: &str) -> Gauge {
        Gauge::new()
    }
    fn histogram(&self, _name: &str) -> Histogram {
        Histogram::new()
    }
}

/// An RAII span: created at phase entry, records its wall-clock duration
/// to the recorder on drop. The only wall-clock reads in the system.
pub struct SpanTimer<'a> {
    rec: &'a dyn Recorder,
    path: String,
    start: Instant,
}

impl<'a> SpanTimer<'a> {
    /// Enter a span at `path` (e.g. `run/classify/block`).
    pub fn start(rec: &'a dyn Recorder, path: impl Into<String>) -> Self {
        SpanTimer {
            rec,
            path: path.into(),
            start: Instant::now(),
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        let us = self.start.elapsed().as_micros() as u64;
        self.rec.record_span(&self.path, us);
    }
}

/// Aggregated timing of one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall-clock microseconds across entries.
    pub total_us: u64,
}

/// The concrete metrics registry: interns metrics by name, aggregates
/// span timings by path, and exports a versioned JSON document.
///
/// Interning takes a mutex, so handles should be obtained once per phase
/// or worker; updates through the returned handles are lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    timing_values: Mutex<BTreeMap<String, u64>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Enter a span; its duration is recorded when the guard drops.
    pub fn span(&self, path: impl Into<String>) -> SpanTimer<'_> {
        SpanTimer::start(self, path)
    }

    /// Read a counter's current value without interning it: `None` when no
    /// counter of that name has been created yet (distinct from an
    /// existing counter sitting at zero). Lets tests and reports assert on
    /// a metric without the read itself creating the metric.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.lock().get(name).map(|c| c.get())
    }

    /// Span timings as `(path, stat)` rows, sorted by path (preorder of
    /// the span tree, since a parent path is a prefix of its children).
    pub fn span_rows(&self) -> Vec<(String, SpanStat)> {
        self.spans
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Scheduling-dependent scalars as `(path, value)` rows, sorted.
    pub fn timing_rows(&self) -> Vec<(String, u64)> {
        self.timing_values
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Render the span tree as indented text, one line per path:
    /// `name  count  total_ms`.
    pub fn render_span_tree(&self) -> String {
        let mut out = String::new();
        for (path, stat) in self.span_rows() {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(&path);
            out.push_str(&format!(
                "{}{}  x{}  {:.3} ms\n",
                "  ".repeat(depth),
                name,
                stat.count,
                stat.total_us as f64 / 1000.0
            ));
        }
        out
    }

    /// Export the versioned metrics document. Everything outside the
    /// `timing` key is deterministic across thread counts; `timing` holds
    /// span durations and scheduling-dependent values.
    pub fn export(&self) -> Value {
        let mut root = Map::new();
        root.insert("schema".into(), Value::String(SCHEMA.into()));

        let mut counters = Map::new();
        for (name, c) in self.counters.lock().iter() {
            counters.insert(name.clone(), Value::Number(Number::U64(c.get())));
        }
        root.insert("counters".into(), Value::Object(counters));

        let mut gauges = Map::new();
        for (name, g) in self.gauges.lock().iter() {
            gauges.insert(name.clone(), Value::Number(Number::I64(g.get())));
        }
        root.insert("gauges".into(), Value::Object(gauges));

        let mut hists = Map::new();
        for (name, h) in self.histograms.lock().iter() {
            let mut entry = Map::new();
            entry.insert("count".into(), Value::Number(Number::U64(h.count())));
            entry.insert("sum".into(), Value::Number(Number::U64(h.sum())));
            let buckets = h
                .bucket_counts()
                .into_iter()
                .map(|(i, n)| {
                    Value::Array(vec![
                        Value::Number(Number::U64(i as u64)),
                        Value::Number(Number::U64(n)),
                    ])
                })
                .collect();
            entry.insert("buckets".into(), Value::Array(buckets));
            hists.insert(name.clone(), Value::Object(entry));
        }
        root.insert("histograms".into(), Value::Object(hists));

        let mut timing = Map::new();
        let mut spans = Map::new();
        for (path, stat) in self.span_rows() {
            let mut entry = Map::new();
            entry.insert("count".into(), Value::Number(Number::U64(stat.count)));
            entry.insert("total_us".into(), Value::Number(Number::U64(stat.total_us)));
            spans.insert(path, Value::Object(entry));
        }
        timing.insert("spans".into(), Value::Object(spans));
        let mut values = Map::new();
        for (path, v) in self.timing_rows() {
            values.insert(path, Value::Number(Number::U64(v)));
        }
        timing.insert("values".into(), Value::Object(values));
        root.insert("timing".into(), Value::Object(timing));

        Value::Object(root)
    }

    /// [`Registry::export`] rendered as two-space-indented JSON. Key
    /// order is sorted (BTreeMap), so the text is byte-deterministic for
    /// equal metric values.
    pub fn export_pretty(&self) -> String {
        self.export().to_json_pretty()
    }
}

impl Recorder for Registry {
    fn counter(&self, name: &str) -> Counter {
        self.counters.lock().entry(name.into()).or_default().clone()
    }

    fn gauge(&self, name: &str) -> Gauge {
        self.gauges.lock().entry(name.into()).or_default().clone()
    }

    fn histogram(&self, name: &str) -> Histogram {
        self.histograms
            .lock()
            .entry(name.into())
            .or_default()
            .clone()
    }

    fn record_span(&self, path: &str, us: u64) {
        let mut spans = self.spans.lock();
        let stat = spans.entry(path.into()).or_default();
        stat.count += 1;
        stat.total_us += us;
    }

    fn timing_value(&self, path: &str, v: u64) {
        *self.timing_values.lock().entry(path.into()).or_default() += v;
    }
}

/// Strip the `timing` key from an exported metrics document, leaving only
/// the deterministic content (what byte-identity tests compare).
pub fn strip_timing(doc: &Value) -> Value {
    match doc {
        Value::Object(m) => {
            let mut out = Map::new();
            for (k, v) in m {
                if k != "timing" {
                    out.insert(k.clone(), v.clone());
                }
            }
            Value::Object(out)
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_value_reads_without_interning() {
        let reg = Registry::new();
        assert_eq!(reg.counter_value("absent"), None);
        // The read above must not have created the metric.
        assert_eq!(reg.counter_value("absent"), None);
        let c = reg.counter("present");
        assert_eq!(reg.counter_value("present"), Some(0));
        c.add(3);
        assert_eq!(reg.counter_value("present"), Some(3));
    }

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn counter_handles_share_state_and_fork_detaches() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x").get(), 4);
        let f = a.fork();
        a.inc();
        assert_eq!(f.get(), 4, "fork is a snapshot");
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        let f = g.fork();
        g.add(1);
        assert_eq!(f.get(), 7);
    }

    #[test]
    fn histogram_tallies_and_fork() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 300] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 307);
        assert_eq!(h.bucket_counts(), vec![(0, 1), (1, 2), (3, 1), (9, 1)]);
        let f = h.fork();
        h.record(1);
        assert_eq!(f.count(), 5);
        assert_eq!(f.bucket_counts(), vec![(0, 1), (1, 2), (3, 1), (9, 1)]);
    }

    #[test]
    fn null_recorder_detaches() {
        let n = NullRecorder;
        n.counter("x").add(5);
        assert_eq!(n.counter("x").get(), 0);
    }

    #[test]
    fn spans_aggregate_by_path() {
        let reg = Registry::new();
        {
            let _run = reg.span("run");
            for _ in 0..3 {
                let _p = reg.span("run/phase");
            }
        }
        let rows = reg.span_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "run");
        assert_eq!(rows[0].1.count, 1);
        assert_eq!(rows[1].0, "run/phase");
        assert_eq!(rows[1].1.count, 3);
        let tree = reg.render_span_tree();
        assert!(tree.contains("run"));
        assert!(tree.contains("  phase"));
    }

    #[test]
    fn export_shape_and_strip_timing() {
        let reg = Registry::new();
        reg.counter("probe.sent").add(42);
        reg.gauge("net.level").set(-2);
        reg.histogram("probe.rtt_us").record(1000);
        reg.record_span("run", 1234);
        reg.timing_value("scheduling/steals", 7);

        let doc = reg.export();
        assert_eq!(doc["schema"].as_str(), Some(SCHEMA));
        assert_eq!(doc["counters"]["probe.sent"].as_u64(), Some(42));
        assert_eq!(doc["gauges"]["net.level"].as_i64(), Some(-2));
        assert_eq!(doc["histograms"]["probe.rtt_us"]["count"].as_u64(), Some(1));
        assert_eq!(
            doc["timing"]["spans"]["run"]["total_us"].as_u64(),
            Some(1234)
        );
        assert_eq!(
            doc["timing"]["values"]["scheduling/steals"].as_u64(),
            Some(7)
        );

        let stripped = strip_timing(&doc);
        assert!(stripped.get("timing").is_none());
        assert_eq!(stripped["counters"]["probe.sent"].as_u64(), Some(42));
    }

    #[test]
    fn export_is_byte_deterministic_for_equal_values() {
        let build = || {
            let reg = Registry::new();
            reg.counter("b").add(2);
            reg.counter("a").add(1);
            reg.histogram("h").record(9);
            strip_timing(&reg.export()).to_json_pretty()
        };
        assert_eq!(build(), build());
    }
}
