#!/usr/bin/env bash
# Local CI gauntlet: format, lint, build, test.
#
#   scripts/check.sh          # everything
#   scripts/check.sh --fast   # skip the release build (lint + debug tests)
set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

if [[ "$FAST" == 0 ]]; then
    echo "==> cargo build --release"
    cargo build --offline --release
fi

echo "==> cargo test -q"
cargo test --offline -q

echo "==> OK"
