//! Property tests for Hobbit's hierarchy test — including the paper's
//! central soundness argument: observations of genuinely heterogeneous
//! (route-entry-structured) groups can NEVER look non-hierarchical, no
//! matter which subset of addresses is probed.

use hobbit::{BlockTable, Relationship};
use netsim::{Addr, Block24, Prefix};
use proptest::prelude::*;

fn lh(i: usize) -> Addr {
    Addr(0x0A00_0000 + i as u32)
}

/// Build a /24 split into CIDR sub-blocks (like distinct route entries) and
/// generate observations: each observed address maps to its sub-block's
/// router. Returns (observations, number of sub-blocks).
fn route_entry_world(splits: u8, hosts: Vec<u8>) -> Vec<(Addr, Vec<Addr>)> {
    let block = Block24(0x0B_0100);
    // Split the /24 into `splits+1` aligned halves recursively: a laminar
    // set of sub-prefixes tiling the /24.
    let mut subs: Vec<Prefix> = vec![block.prefix()];
    for _ in 0..splits {
        // Split the currently largest sub-prefix.
        subs.sort_by_key(|p| p.len());
        let p = subs.remove(0);
        if let Some((lo, hi)) = p.split() {
            if lo.len() <= 28 {
                subs.push(lo);
                subs.push(hi);
            } else {
                subs.push(p);
                break;
            }
        }
    }
    hosts
        .into_iter()
        .map(|h| {
            let a = block.addr(h);
            let idx = subs.iter().position(|p| p.contains(a)).expect("tiled");
            (a, vec![lh(idx)])
        })
        .collect()
}

fn relationship_of(obs: &[(Addr, Vec<Addr>)]) -> Relationship {
    BlockTable::from_observations(obs.iter().map(|(a, l)| (*a, l.as_slice()))).relationship()
}

proptest! {
    /// The soundness theorem (paper Section 2.3): groups induced by
    /// distinct route entries are hierarchical under ANY subset of
    /// observations — Hobbit never calls a heterogeneous block homogeneous
    /// because of which addresses happened to respond.
    #[test]
    fn route_entry_groups_never_non_hierarchical(
        splits in 1u8..4,
        hosts in proptest::collection::btree_set(0u8..=255, 4..40),
    ) {
        let obs = route_entry_world(splits, hosts.into_iter().collect());
        prop_assert_ne!(relationship_of(&obs), Relationship::NonHierarchical);
        // And any subset of the observations stays hierarchical too.
        if obs.len() > 4 {
            let subset: Vec<_> = obs.iter().step_by(2).cloned().collect();
            prop_assert_ne!(relationship_of(&subset), Relationship::NonHierarchical);
        }
    }

    /// The relationship is invariant under observation order.
    #[test]
    fn relationship_is_permutation_invariant(
        assignments in proptest::collection::vec((0u8..=255, 0usize..5), 4..30),
        rotate in 0usize..20,
    ) {
        let obs: Vec<(Addr, Vec<Addr>)> = assignments
            .iter()
            .map(|&(h, g)| (Block24(0x0C_0000).addr(h), vec![lh(g)]))
            .collect();
        let mut rotated = obs.clone();
        let n = rotated.len().max(1);
        rotated.rotate_left(rotate % n);
        prop_assert_eq!(relationship_of(&obs), relationship_of(&rotated));
    }

    /// Merged groups partition the observed addresses.
    #[test]
    fn merged_members_partition(
        assignments in proptest::collection::vec((0u8..=255, proptest::collection::vec(0usize..6, 1..3)), 2..25),
    ) {
        let obs: Vec<(Addr, Vec<Addr>)> = assignments
            .iter()
            .map(|(h, gs)| {
                (Block24(0x0D_0000).addr(*h), gs.iter().map(|&g| lh(g)).collect())
            })
            .collect();
        let groups = BlockTable::from_observations(obs.iter().map(|(a, l)| (*a, l.as_slice())));
        let merged = groups.merged_members();
        let mut all: Vec<Addr> = merged.iter().flatten().copied().collect();
        all.sort();
        all.dedup();
        let mut expect: Vec<Addr> = obs.iter().map(|(a, _)| *a).collect();
        expect.sort();
        expect.dedup();
        prop_assert_eq!(all, expect);
        // No address appears in two merged groups.
        let total: usize = merged.iter().map(Vec::len).sum();
        let distinct: std::collections::BTreeSet<Addr> =
            merged.iter().flatten().copied().collect();
        prop_assert_eq!(total, distinct.len());
    }

    /// Adding an observation that shares a last-hop with every existing
    /// group collapses everything to a single group.
    #[test]
    fn universal_member_collapses_groups(
        assignments in proptest::collection::vec((0u8..=254, 0usize..4), 4..20),
    ) {
        let mut obs: Vec<(Addr, Vec<Addr>)> = assignments
            .iter()
            .map(|&(h, g)| (Block24(0x0E_0000).addr(h), vec![lh(g)]))
            .collect();
        let all_lhs: Vec<Addr> = {
            let mut v: Vec<Addr> = obs.iter().flat_map(|(_, l)| l.clone()).collect();
            v.sort();
            v.dedup();
            v
        };
        obs.push((Block24(0x0E_0000).addr(255), all_lhs));
        let groups = BlockTable::from_observations(obs.iter().map(|(a, l)| (*a, l.as_slice())));
        prop_assert_eq!(groups.merged_members().len(), 1);
        prop_assert_eq!(groups.relationship(), Relationship::SingleGroup);
    }

    /// disjoint_and_aligned, when it fires, returns non-overlapping covers
    /// that contain exactly their group's members.
    #[test]
    fn aligned_covers_are_consistent(
        assignments in proptest::collection::vec((0u8..=255, 0usize..4), 4..30),
    ) {
        let obs: Vec<(Addr, Vec<Addr>)> = assignments
            .iter()
            .map(|&(h, g)| (Block24(0x0F_0000).addr(h), vec![lh(g)]))
            .collect();
        let groups = BlockTable::from_observations(obs.iter().map(|(a, l)| (*a, l.as_slice())));
        if let Some(covers) = groups.disjoint_and_aligned() {
            for i in 0..covers.len() {
                for j in 0..i {
                    prop_assert!(!covers[i].overlaps(covers[j]));
                }
            }
            // Every observed address is inside exactly one cover.
            for (a, _) in &obs {
                let containing = covers.iter().filter(|c| c.contains(*a)).count();
                prop_assert_eq!(containing, 1);
            }
        }
    }
}
