//! Kill/resume conformance sweep: a checkpointed pipeline run killed at an
//! arbitrary journal point and resumed must produce a final report
//! byte-identical to an uninterrupted run — at every tested thread count
//! and fault level — and every resumed run must stay conform-clean against
//! the reference oracle. Worker sabotage (panics, stalls) must quarantine
//! or recover exactly the targeted block and nothing else.

use experiments::journal::{read_journal, CrashPoint, Entry, JournalWriter, RunMeta, JOURNAL_FILE};
use experiments::supervise::{InjectedFault, SuperviseConfig, DEFAULT_ATTEMPT_BUDGET};
use experiments::{Pipeline, PipelineBuilder, ShutdownSignal};
use hobbit::Classification;
use netsim::{Addr, Block24};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::Duration;
use testkit::{first_divergence, kill_points};

/// Thread counts every kill/resume cycle must agree across.
const THREADS: &[usize] = &[1, 8];

const SEED: u64 = 4242;
const SCALE: f64 = 0.01;

/// The loss level of the faulted half of the sweep (rate 0.5, as in the
/// conformance sweep).
const FAULT_LOSS: f64 = 0.02;

fn base(loss: f64) -> PipelineBuilder {
    let b = Pipeline::builder().seed(SEED).scale(SCALE);
    if loss > 0.0 {
        b.faults(loss, 0.5)
    } else {
        b
    }
}

/// What the sweep needs from an uninterrupted run, computed once per loss
/// level and shared across tests (the box may be single-core; baselines
/// are the expensive part).
struct Baseline {
    report: String,
    selected: Vec<Block24>,
    measurements: Vec<(Block24, Classification, Vec<Addr>)>,
}

fn baseline(loss: f64) -> &'static Baseline {
    static CLEAN: OnceLock<Baseline> = OnceLock::new();
    static FAULTED: OnceLock<Baseline> = OnceLock::new();
    let cell = if loss == 0.0 { &CLEAN } else { &FAULTED };
    cell.get_or_init(|| {
        let p = base(loss).threads(2).run();
        let issues = p.verify_conformance();
        assert!(issues.is_empty(), "baseline not conform-clean: {issues:?}");
        assert!(
            p.selected.len() > 50,
            "scenario too small to sweep ({} blocks)",
            p.selected.len()
        );
        Baseline {
            report: p.canonical_report(),
            selected: p.selected.iter().map(|s| s.block).collect(),
            measurements: p
                .measurements
                .iter()
                .map(|m| (m.block, m.classification, m.lasthop_set.clone()))
                .collect(),
        }
    })
}

/// Run dirs live under `HOBBIT_RESUME_DIR` (CI points this at a workspace
/// path so diverging run-dirs survive as artifacts) or the system temp
/// dir. Passing tests remove their dirs; a failing test leaves its
/// journal behind for post-mortem.
fn run_dir(tag: &str) -> PathBuf {
    let base = std::env::var_os("HOBBIT_RESUME_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let d = base.join(format!("hobbit-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_identical(expect: &str, got: &str, what: &str) {
    if let Some((pos, ctx)) = first_divergence(expect, got) {
        panic!("{what}: reports diverge at {pos}: {ctx}");
    }
}

/// One kill→resume cycle checked for byte-identity and oracle conformance.
fn kill_resume_cycle(loss: f64, kp: u64, torn: bool, threads: usize) {
    let bl = baseline(loss);
    let total = bl.selected.len() as u64;
    let tag = format!("sweep-l{}-k{kp}-t{threads}", (loss * 100.0) as u32);
    let dir = run_dir(&tag);
    let crashed = base(loss)
        .threads(threads)
        .run_dir(&dir)
        .crash_point(CrashPoint {
            after_block_appends: kp,
            torn,
        })
        .run();
    assert!(
        crashed.supervision.interrupted,
        "{tag}: kill at {kp}/{total} never fired"
    );
    let resumed = base(loss).threads(threads).resume_from(&dir).run();
    assert!(!resumed.supervision.interrupted);
    assert_eq!(
        resumed.measurements.len(),
        resumed.selected.len(),
        "{tag}: resume left blocks unclassified"
    );
    assert_identical(&bl.report, &resumed.canonical_report(), &tag);
    let issues = resumed.verify_conformance();
    assert!(issues.is_empty(), "{tag}: {issues:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

fn sweep(loss: f64) {
    let total = baseline(loss).selected.len() as u64;
    for (i, &kp) in kill_points(total).iter().enumerate() {
        // Alternate torn (mid-append) kills along the sweep.
        let torn = i % 2 == 1;
        for &threads in THREADS {
            kill_resume_cycle(loss, kp, torn, threads);
        }
    }
}

#[test]
fn kill_resume_sweep_is_byte_identical_lossless() {
    sweep(0.0);
}

#[test]
fn kill_resume_sweep_is_byte_identical_under_loss() {
    sweep(FAULT_LOSS);
}

#[test]
fn dynamic_world_kill_resume_is_byte_identical() {
    // A time-evolving run: the schedule derives from the seed, so a resumed
    // incarnation must replay the exact world evolution from the journal's
    // three dynamics numbers and land on the same report bytes.
    let uninterrupted = base(0.0).threads(2).dynamics(0.5, 64).run();
    assert!(
        uninterrupted.dynamics_events > 0,
        "seed {SEED} derived an empty schedule — the test would be vacuous"
    );
    let report = uninterrupted.canonical_report();
    assert!(
        report.contains("\"dynamics\":{"),
        "dynamic report missing its dynamics summary"
    );
    let total = uninterrupted.selected.len() as u64;
    let dir = run_dir("dynamic");
    let crashed = base(0.0)
        .threads(4)
        .dynamics(0.5, 64)
        .run_dir(&dir)
        .crash_point(CrashPoint {
            after_block_appends: total / 3,
            torn: true,
        })
        .run();
    assert!(crashed.supervision.interrupted);
    let resumed = base(0.0)
        .threads(8)
        .dynamics(0.5, 64)
        .resume_from(&dir)
        .run();
    assert!(!resumed.supervision.interrupted);
    assert!(resumed.supervision.resumed_blocks > 0);
    assert_eq!(resumed.dynamics_events, uninterrupted.dynamics_events);
    assert_identical(&report, &resumed.canonical_report(), "dynamic kill/resume");
    let issues = resumed.verify_conformance();
    assert!(issues.is_empty(), "{issues:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn double_kill_then_resume_completes_identically() {
    let bl = baseline(0.0);
    let total = bl.selected.len() as u64;
    let dir = run_dir("double-kill");
    let first = base(0.0)
        .threads(4)
        .run_dir(&dir)
        .crash_point(CrashPoint {
            after_block_appends: total / 4,
            torn: false,
        })
        .run();
    assert!(first.supervision.interrupted);
    // The second incarnation resumes — and dies again, torn, further in.
    let second = base(0.0)
        .threads(1)
        .resume_from(&dir)
        .crash_point(CrashPoint {
            after_block_appends: total / 4,
            torn: true,
        })
        .run();
    assert!(second.supervision.interrupted);
    assert!(second.supervision.resumed_blocks > 0);
    let third = base(0.0).threads(8).resume_from(&dir).run();
    assert!(!third.supervision.interrupted);
    assert!(second.supervision.resumed_blocks < third.supervision.resumed_blocks);
    assert_identical(&bl.report, &third.canonical_report(), "double-kill");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn uninterrupted_checkpointed_run_matches_plain_run() {
    let bl = baseline(0.0);
    let dir = run_dir("clean");
    let journaled = base(0.0).threads(2).run_dir(&dir).run();
    assert!(!journaled.supervision.interrupted);
    assert_identical(
        &bl.report,
        &journaled.canonical_report(),
        "checkpointing a run must not change its outcome",
    );
    // The sealed journal replays to the full measurement set.
    let replay = read_journal(&dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(replay.blocks.len(), journaled.measurements.len());
    assert!(!replay.truncated);
    // Resuming a *complete* journal re-measures nothing.
    let resumed = Pipeline::builder().threads(1).resume_from(&dir).run();
    assert_eq!(
        resumed.supervision.resumed_blocks,
        resumed.selected.len() as u64
    );
    assert_identical(
        &bl.report,
        &resumed.canonical_report(),
        "complete-journal resume",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A minimal but real measurement for journal-format tests (the sweep
/// below never runs the pipeline — it attacks the WAL framing directly).
fn tiny_measurement(block: u32) -> hobbit::BlockMeasurement {
    let block = Block24(block);
    let lh = Addr::new(10, 0, 0, 1);
    hobbit::BlockMeasurement {
        block,
        classification: Classification::SameLasthop,
        lasthop_set: vec![lh],
        per_dest: (0..4).map(|i| (block.addr(i + 1), vec![lh])).collect(),
        dests_probed: 4,
        dests_resolved: 4,
        dests_anonymous: 0,
        dests_unresolved: 0,
        reprobes: 0,
        probes_used: 12,
        dest_epochs: vec![],
    }
}

/// Satellite of the torn-tail contract: a kill can land at *any* byte of
/// the final record — including inside the 8-byte len+CRC frame header,
/// which the batch-boundary crash simulator never produces. For every
/// truncation offset, replay must recover exactly the preceding records,
/// flag the tail, and resume must truncate physically and then append
/// cleanly.
#[test]
fn torn_tail_truncation_sweep_over_every_offset_of_the_final_record() {
    let dir = run_dir("truncation-sweep");
    let meta = RunMeta::new(7, 0.01, None);
    let blocks = 3u64;
    {
        let mut w = JournalWriter::create(&dir, &meta).unwrap();
        for i in 0..blocks {
            w.append(&Entry::Block {
                index: i,
                measurement: tiny_measurement(0x0A_0100 + i as u32),
            })
            .unwrap();
        }
        w.flush().unwrap();
    }
    let path = dir.join(JOURNAL_FILE);
    let whole = std::fs::read(&path).unwrap();
    let intact = read_journal(&path).unwrap();
    assert_eq!(intact.blocks.len(), blocks as usize);
    assert!(!intact.truncated);

    // The final record spans [last_start, whole.len()).
    let last_frame = {
        let frame_len =
            |at: usize| 8 + u32::from_le_bytes(whole[at..at + 4].try_into().unwrap()) as usize;
        let mut at = 0;
        while at + frame_len(at) < whole.len() {
            at += frame_len(at);
        }
        assert_eq!(
            at + frame_len(at),
            whole.len(),
            "frame walk must land on EOF"
        );
        at
    };

    for cut in last_frame..whole.len() {
        std::fs::write(&path, &whole[..cut]).unwrap();
        let r = read_journal(&path).unwrap();
        assert_eq!(
            r.blocks.len(),
            blocks as usize - 1,
            "cut at byte {cut} (record starts at {last_frame}): wrong prefix"
        );
        assert_eq!(r.meta.as_ref(), Some(&meta), "cut at byte {cut}: meta lost");
        assert_eq!(
            r.truncated,
            cut != last_frame,
            "cut at byte {cut}: truncation flag wrong ({} partial bytes)",
            cut - last_frame
        );
        assert_eq!(r.valid_len, last_frame as u64, "cut at byte {cut}");

        // Resume drops the partial bytes from disk and appends cleanly.
        let (mut w, replay) = JournalWriter::resume(&dir).unwrap();
        assert_eq!(replay.blocks.len(), blocks as usize - 1);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            last_frame as u64,
            "cut at byte {cut}: resume left partial bytes on disk"
        );
        w.append(&Entry::Block {
            index: blocks - 1,
            measurement: tiny_measurement(0x0A_0100 + blocks as u32 - 1),
        })
        .unwrap();
        w.flush().unwrap();
        let healed = read_journal(&path).unwrap();
        assert_eq!(healed.blocks.len(), blocks as usize, "cut at byte {cut}");
        assert!(!healed.truncated, "cut at byte {cut}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn injected_panic_quarantines_only_that_block() {
    let bl = baseline(0.0);
    let victim = bl.selected.len() / 2;
    let victim_block = bl.selected[victim];
    let p = base(0.0)
        .threads(2)
        .inject(Arc::new(move |_w, task, _attempt| {
            (task == victim).then_some(InjectedFault::Panic)
        }))
        .run();
    // The poisoned block is quarantined after its full attempt budget;
    // every other block classifies normally.
    assert_eq!(p.measurements.len(), p.selected.len() - 1);
    assert!(p.measurements.iter().all(|m| m.block != victim_block));
    assert_eq!(p.supervision.quarantined.len(), 1);
    let q = &p.supervision.quarantined[0];
    assert_eq!(q.block, victim_block);
    assert_eq!(q.attempts, DEFAULT_ATTEMPT_BUDGET);
    assert!(q.detail.contains("injected fault"), "{:?}", q.detail);
    assert_eq!(p.supervision.panics_caught, DEFAULT_ATTEMPT_BUDGET as u64);
    assert!(p.supervision.requeues >= 1);
    // The surviving measurements are untouched by the sabotage.
    let surviving: Vec<_> = bl
        .measurements
        .iter()
        .filter(|(b, _, _)| *b != victim_block)
        .collect();
    assert_eq!(surviving.len(), p.measurements.len());
    for ((block, class, lasthops), m) in surviving.iter().zip(&p.measurements) {
        assert_eq!(*block, m.block);
        assert_eq!(*class, m.classification);
        assert_eq!(*lasthops, m.lasthop_set);
    }
    let issues = p.verify_conformance();
    assert!(issues.is_empty(), "{issues:?}");
}

#[test]
fn transient_panic_is_requeued_and_invisible_in_the_report() {
    let bl = baseline(0.0);
    let victim = 3.min(bl.selected.len() - 1);
    let p = base(0.0)
        .threads(2)
        .inject(Arc::new(move |_w, task, attempt| {
            (task == victim && attempt == 0).then_some(InjectedFault::Panic)
        }))
        .run();
    // One panic, one requeue, and the retry measures exactly what an
    // unsabotaged run measures (the failed attempt never probed).
    assert_eq!(p.supervision.panics_caught, 1);
    assert_eq!(p.supervision.requeues, 1);
    assert!(p.supervision.quarantined.is_empty());
    assert_identical(
        &bl.report,
        &p.canonical_report(),
        "a recovered transient panic",
    );
}

#[test]
fn stalled_block_is_cancelled_by_the_watchdog_and_recovered() {
    let bl = baseline(0.0);
    let victim = 1.min(bl.selected.len() - 1);
    let p = base(0.0)
        .threads(2)
        .supervise(SuperviseConfig {
            deadline: Duration::from_millis(400),
            ..Default::default()
        })
        .inject(Arc::new(move |_w, task, attempt| {
            (task == victim && attempt == 0).then_some(InjectedFault::Stall)
        }))
        .run();
    assert!(p.supervision.stalls_cancelled >= 1);
    assert!(p.supervision.requeues >= 1);
    assert!(p.supervision.quarantined.is_empty());
    assert_identical(
        &bl.report,
        &p.canonical_report(),
        "a watchdog-recovered stall",
    );
}

#[test]
fn graceful_shutdown_drains_seals_and_resumes() {
    let bl = baseline(0.0);
    let dir = run_dir("shutdown");
    let signal = ShutdownSignal::new();
    let trigger = signal.clone();
    let mid = bl.selected.len() / 2;
    // Request shutdown from inside the phase (the injector runs as a worker
    // picks up a block), so the request always lands mid-classification.
    let p = base(0.0)
        .threads(2)
        .run_dir(&dir)
        .shutdown_signal(signal)
        .inject(Arc::new(move |_w, task, _attempt| {
            if task == mid {
                trigger.request();
            }
            None
        }))
        .run();
    assert!(p.supervision.shutdown);
    assert!(!p.supervision.interrupted);
    assert!(
        p.measurements.len() < p.selected.len(),
        "shutdown should leave queued work undone"
    );
    // The journal is sealed: a shutdown marker, no torn tail, and every
    // in-flight block drained into a checkpoint.
    let replay = read_journal(&dir.join(JOURNAL_FILE)).unwrap();
    assert!(replay.shutdown, "journal missing the shutdown marker");
    assert!(!replay.truncated);
    assert_eq!(replay.blocks.len(), p.measurements.len());
    let resumed = base(0.0).threads(8).resume_from(&dir).run();
    assert_identical(&bl.report, &resumed.canonical_report(), "shutdown+resume");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn supervision_metrics_are_exported_and_outcome_independent() {
    let dir = run_dir("metrics");
    let p = base(0.0).threads(2).run_dir(&dir).observe().run();
    let reg = p.obs.as_deref().unwrap();
    // Pre-interned schema: every supervision counter exists even though
    // nothing went wrong in this run.
    assert_eq!(reg.counter_value("supervise.panics_caught"), Some(0));
    assert_eq!(reg.counter_value("supervise.stalls_cancelled"), Some(0));
    assert_eq!(reg.counter_value("supervise.requeues"), Some(0));
    assert_eq!(reg.counter_value("supervise.quarantined"), Some(0));
    assert_eq!(reg.counter_value("supervise.resumed_blocks"), Some(0));
    assert_eq!(reg.counter_value("journal.truncated_tail"), Some(0));
    // Meta + one record per block, sealed with batched fsyncs.
    assert_eq!(
        reg.counter_value("journal.appends"),
        Some(1 + p.measurements.len() as u64)
    );
    assert!(reg.counter_value("journal.fsyncs").unwrap() > 0);

    // A resumed run reports what it recovered, and a torn tail is counted.
    let killed_dir = run_dir("metrics-kill");
    let _ = base(0.0)
        .threads(2)
        .run_dir(&killed_dir)
        .crash_point(CrashPoint {
            after_block_appends: 40,
            torn: true,
        })
        .run();
    let resumed = base(0.0)
        .threads(2)
        .resume_from(&killed_dir)
        .observe()
        .run();
    let reg = resumed.obs.as_deref().unwrap();
    assert_eq!(
        reg.counter_value("supervise.resumed_blocks"),
        Some(resumed.supervision.resumed_blocks)
    );
    assert!(resumed.supervision.resumed_blocks > 0);
    assert_eq!(reg.counter_value("journal.truncated_tail"), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&killed_dir).unwrap();
}
