//! Property tests for the aggregation algebra (paper Sections 5–6):
//! the similarity score is a symmetric [0, 1] measure, identical-set
//! aggregation partitions its input, and MCL clustering does not depend
//! on the order the aggregates are presented in.

use aggregate::{aggregate_identical, cluster_aggregates, similarity, Aggregate, HomogBlock};
use netsim::{Addr, Block24};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A sorted, deduplicated last-hop set over a small router universe
/// (small so random sets actually intersect).
fn arb_lasthops(max_len: usize) -> impl Strategy<Value = Vec<Addr>> {
    collection::btree_set(0u32..40, 0..max_len.max(1))
        .prop_map(|s| s.into_iter().map(|n| Addr(0x0A00_0000 + n)).collect())
}

/// Homogeneous /24s with distinct block addresses and random last-hop
/// sets (some empty, some shared between blocks).
fn arb_homog_blocks() -> impl Strategy<Value = Vec<HomogBlock>> {
    (
        collection::btree_set(0u32..4096, 0..24),
        collection::vec(arb_lasthops(5), 24),
    )
        .prop_map(|(ids, sets)| {
            ids.into_iter()
                .zip(sets)
                .map(|(id, lhs)| HomogBlock::new(Block24(id), lhs))
                .collect()
        })
}

/// Canonical form of a clustering of aggregates: each cluster becomes the
/// sorted set of its member aggregates' block lists, and the clusters
/// themselves are sorted — invariant under any relabeling of both.
fn canonical_clusters(aggs: &[Aggregate], clusters: &[Vec<u32>]) -> BTreeSet<Vec<Vec<Block24>>> {
    clusters
        .iter()
        .map(|c| {
            let mut members: Vec<Vec<Block24>> =
                c.iter().map(|&i| aggs[i as usize].blocks.clone()).collect();
            members.sort();
            members
        })
        .collect()
}

proptest! {
    /// `similarity` is symmetric, bounded to [0, 1], and 1 on identity.
    #[test]
    fn similarity_is_a_symmetric_unit_measure(
        a in arb_lasthops(8),
        b in arb_lasthops(8),
    ) {
        let s_ab = similarity(&a, &b);
        let s_ba = similarity(&b, &a);
        prop_assert_eq!(s_ab, s_ba, "similarity must be symmetric");
        prop_assert!((0.0..=1.0).contains(&s_ab), "out of range: {s_ab}");
        if !a.is_empty() {
            prop_assert_eq!(similarity(&a, &a), 1.0);
        }
        // Disjointness in either direction means score 0.
        if a.iter().all(|x| !b.contains(x)) {
            prop_assert_eq!(s_ab, 0.0);
        }
    }

    /// Identical-set aggregation partitions the input: every block with a
    /// non-empty last-hop set lands in exactly one aggregate, every
    /// aggregate's set equals its members' sets, and distinct aggregates
    /// carry distinct sets.
    #[test]
    fn aggregation_is_a_partition(blocks in arb_homog_blocks()) {
        let aggs = aggregate_identical(&blocks);

        let mut seen: BTreeSet<Block24> = BTreeSet::new();
        for a in &aggs {
            prop_assert!(!a.lasthops.is_empty(), "empty-set aggregate");
            for &b in &a.blocks {
                prop_assert!(seen.insert(b), "{b:?} appears in two aggregates");
            }
        }
        let expected: BTreeSet<Block24> = blocks
            .iter()
            .filter(|hb| !hb.lasthops.is_empty())
            .map(|hb| hb.block)
            .collect();
        prop_assert_eq!(seen, expected, "aggregates must cover exactly the non-empty blocks");

        // Membership is by set identity, and sets identify aggregates.
        let mut sets: BTreeSet<&[Addr]> = BTreeSet::new();
        for a in &aggs {
            prop_assert!(sets.insert(&a.lasthops), "two aggregates share a set");
            for &b in &a.blocks {
                let hb = blocks.iter().find(|hb| hb.block == b).unwrap();
                prop_assert_eq!(&hb.lasthops, &a.lasthops);
            }
        }
    }

    /// MCL clustering is invariant under permutation of the aggregate
    /// list: the same blocks end up clustered together regardless of
    /// presentation order.
    #[test]
    fn mcl_clustering_is_permutation_invariant(
        blocks in arb_homog_blocks(),
        perm_seed in any::<u64>(),
    ) {
        let aggs = aggregate_identical(&blocks);
        let base = cluster_aggregates(&aggs, 2.0);

        // Fisher–Yates with the deterministic test generator.
        let mut shuffled = aggs.clone();
        let mut g = Gen::new(perm_seed);
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.below(i + 1));
        }
        let permuted = cluster_aggregates(&shuffled, 2.0);

        prop_assert_eq!(
            canonical_clusters(&aggs, &base.clusters),
            canonical_clusters(&shuffled, &permuted.clusters),
            "clustering must not depend on input order"
        );
    }
}
