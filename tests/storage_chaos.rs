//! Storage-chaos conformance sweep: the hard invariant of the fault-
//! injecting VFS layer is that a run whose disk misbehaves — ENOSPC, EIO,
//! short writes, torn renames, lying fsyncs — either completes with a
//! `hobbit-report/v1` byte-identical to a faithful-disk run or fails with
//! a typed, actionable `StorageError`. Never a silently corrupted run
//! dir: after every sabotaged run the journal on disk must still replay
//! as a valid prefix of the clean run, and resuming it on a healthy disk
//! must land on the same report bytes.

use experiments::coordinator::{run_sharded, CoordinatorConfig, REPORT_FILE};
use experiments::journal::{read_journal, JOURNAL_FILE};
use experiments::lease::{is_done, shard_dir};
use experiments::vfs::{ChaosVfs, FaultKind, OpKind, Storage, StorageErrorKind};
use experiments::Pipeline;
use hobbit::BlockMeasurement;
use obs::Registry;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use testkit::{first_divergence, golden_specs, storage_schedules, CorpusEntry, StorageSabotage};

const SEED: u64 = 4242;
const SCALE: f64 = 0.01;

/// Thread counts every chaos schedule runs under.
const THREADS: &[usize] = &[1, 8];

/// Sweep width: `HOBBIT_CHAOS_SCHEDULES` overrides (CI may widen it), the
/// default meets the acceptance floor of 30 seeded schedules.
fn sweep_width() -> usize {
    std::env::var("HOBBIT_CHAOS_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30)
}

/// What the sweep needs from the faithful-disk run, computed once: the
/// report every chaos survivor must reproduce byte-for-byte, and the
/// per-block measurements every surviving journal record must match.
struct Baseline {
    report: String,
    by_block: HashMap<netsim::Block24, BlockMeasurement>,
}

fn baseline() -> &'static Baseline {
    static CELL: OnceLock<Baseline> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = Pipeline::builder().seed(SEED).scale(SCALE).threads(2).run();
        Baseline {
            report: p.canonical_report(),
            by_block: p
                .measurements
                .iter()
                .map(|m| (m.block, m.clone()))
                .collect(),
        }
    })
}

/// Run dirs live under `HOBBIT_CHAOS_DIR` (CI points this at a workspace
/// path so failing run-dirs survive as artifacts) or the system temp dir.
/// Passing tests remove their dirs; a failing test leaves the journal,
/// leases, and chaos schedule tag behind for post-mortem.
fn run_dir(tag: &str) -> PathBuf {
    let base = std::env::var_os("HOBBIT_CHAOS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let d = base.join(format!("hobbit-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn assert_identical(got: &str, what: &str) {
    if let Some((pos, ctx)) = first_divergence(&baseline().report, got) {
        panic!("{what}: report diverges from the faithful-disk run at {pos}: {ctx}");
    }
}

fn chaos_builder(threads: usize, dir: &Path, vfs: ChaosVfs) -> experiments::PipelineBuilder {
    Pipeline::builder()
        .seed(SEED)
        .scale(SCALE)
        .threads(threads)
        .run_dir(dir)
        .storage(Storage::with_chaos(vfs))
}

/// Whatever a sabotaged run did, its journal must still be a valid,
/// bit-faithful prefix of the clean run: every replayed block record
/// equals the faithful-disk measurement of that block exactly.
fn assert_valid_prefix(dir: &Path, tag: &str) -> usize {
    let path = dir.join(JOURNAL_FILE);
    if !path.exists() {
        return 0; // the fault fired before the journal was even created
    }
    let replay = read_journal(&path)
        .unwrap_or_else(|e| panic!("{tag}: journal unreadable after the run: {e}"));
    let bl = baseline();
    for m in &replay.blocks {
        let want = bl
            .by_block
            .get(&m.block)
            .unwrap_or_else(|| panic!("{tag}: journal holds unknown block {}", m.block));
        assert_eq!(
            serde_json::to_string(m).unwrap(),
            serde_json::to_string(want).unwrap(),
            "{tag}: journaled record for block {} diverges from the clean run",
            m.block
        );
    }
    replay.blocks.len()
}

/// The tentpole sweep: every seeded fault schedule × thread count either
/// reports byte-identical or fails typed, and the journal left behind is
/// always a resumable prefix.
#[test]
fn chaos_sweep_reports_identical_bytes_or_fails_typed() {
    let (mut completed, mut failed, mut resumed_after_failure) = (0u32, 0u32, 0u32);
    let mut faults_total = 0u64;
    for (i, plan) in storage_schedules(sweep_width()).iter().enumerate() {
        for &threads in THREADS {
            let tag = format!("sweep-{i}-t{threads}");
            let dir = run_dir(&tag);
            let vfs = ChaosVfs::from_plan(plan);
            let handle = vfs.clone();
            let result = chaos_builder(threads, &dir, vfs).try_run();
            faults_total += handle.faults_injected();
            let journaled = assert_valid_prefix(&dir, &tag);
            match result {
                Ok(p) => {
                    completed += 1;
                    assert!(!p.supervision.interrupted, "{tag}");
                    // A completed run durably journaled every block: any
                    // lying fsync would have been caught by the writer's
                    // read-back verification and failed the run instead.
                    assert_eq!(journaled, p.measurements.len(), "{tag}");
                    assert_identical(&p.canonical_report(), &tag);
                }
                Err(e) => {
                    failed += 1;
                    // Typed and actionable: a classified kind, the failing
                    // operation, and the path all survive into the message.
                    assert!(
                        matches!(
                            e.kind,
                            StorageErrorKind::Transient
                                | StorageErrorKind::Persistent
                                | StorageErrorKind::Corruption
                        ),
                        "{tag}: {e:?}"
                    );
                    let msg = e.to_string();
                    assert!(!e.op.is_empty() && msg.contains(e.op), "{tag}: {msg}");
                    // The healthy-disk resume completes the interrupted
                    // run into the exact clean-run bytes.
                    if dir.join(JOURNAL_FILE).exists()
                        && read_journal(&dir.join(JOURNAL_FILE))
                            .unwrap()
                            .meta
                            .is_some()
                    {
                        resumed_after_failure += 1;
                        let resumed = Pipeline::builder()
                            .seed(SEED)
                            .scale(SCALE)
                            .threads(2)
                            .resume_from(&dir)
                            .run();
                        assert_identical(&resumed.canonical_report(), &format!("{tag}: resume"));
                    }
                }
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    assert!(faults_total > 0, "the sweep injected nothing — vacuous");
    assert!(
        completed > 0,
        "no schedule completed ({failed} failed) — light rates should survive"
    );
    assert!(
        failed > 0 && resumed_after_failure > 0,
        "no schedule failed typed+resumable ({completed} completed) — hostile rates should not"
    );
}

/// Transient-only chaos (EIO on a write and an fsync) is absorbed by the
/// bounded retries: the run completes byte-identical and the `storage.*`
/// counters account for every fault and retry.
#[test]
fn transient_faults_are_retried_and_counted() {
    let dir = run_dir("transient");
    let vfs = ChaosVfs::scripted(vec![
        (OpKind::Write, 2, FaultKind::Eio),
        (OpKind::Write, 9, FaultKind::ShortWrite),
        (OpKind::Sync, 1, FaultKind::Eio),
    ]);
    let p = chaos_builder(2, &dir, vfs)
        .observe()
        .try_run()
        .expect("transient faults must be absorbed by the retry layer");
    assert_identical(&p.canonical_report(), "transient-only chaos");
    let reg = p.obs.as_deref().unwrap();
    assert!(reg.counter_value("storage.faults_seen").unwrap() >= 3);
    assert!(reg.counter_value("storage.retried").unwrap() >= 3);
    assert_eq!(reg.counter_value("storage.quarantined"), Some(0));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The canonical persistent fault: the disk fills mid-run. The run must
/// fail with a Persistent error, seal the journal as a valid prefix, and
/// resume to the exact clean-run bytes once space is back.
#[test]
fn disk_full_mid_run_fails_typed_and_resumes_byte_identical() {
    let dir = run_dir("enospc");
    let vfs = ChaosVfs::from_plan(&StorageSabotage::DiskFull { at_write: 40 });
    let e = chaos_builder(2, &dir, vfs)
        .observe()
        .try_run()
        .err()
        .expect("a full disk must fail the run, not truncate it silently");
    assert_eq!(e.kind, StorageErrorKind::Persistent, "{e}");
    let journaled = assert_valid_prefix(&dir, "enospc");
    assert!(journaled > 0, "the prefix before the fault must survive");
    let resumed = Pipeline::builder()
        .seed(SEED)
        .scale(SCALE)
        .threads(8)
        .resume_from(&dir)
        .run();
    assert!(resumed.supervision.resumed_blocks > 0);
    assert_identical(&resumed.canonical_report(), "post-ENOSPC resume");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A lying fsync mid-run: the device acknowledges the sync but durably
/// drops the batch. The writer's read-back verification catches the
/// durable length going backwards, seals the journal with a Corruption
/// error, and the run fails typed — it never marks acknowledged-but-lost
/// work as done. The surviving prefix resumes to the exact clean bytes.
#[test]
fn fsync_lie_mid_run_is_detected_and_fails_typed() {
    let dir = run_dir("fsync-lie");
    let vfs = ChaosVfs::from_plan(&StorageSabotage::FsyncLie { at_sync: 2 });
    let e = chaos_builder(1, &dir, vfs)
        .try_run()
        .err()
        .expect("a detected fsync lie must fail the run, not complete over a hole");
    assert_eq!(e.kind, StorageErrorKind::Corruption, "{e}");
    // Sync 1 (the first post-meta batch) was honest, so exactly that
    // batch survives; the resume re-measures everything the device
    // dropped and lands on the clean-run bytes.
    let journaled = assert_valid_prefix(&dir, "fsync-lie");
    assert!(journaled > 0, "the honestly-synced batch must survive");
    let resumed = Pipeline::builder()
        .seed(SEED)
        .scale(SCALE)
        .threads(2)
        .resume_from(&dir)
        .run();
    assert_eq!(resumed.supervision.resumed_blocks, journaled as u64);
    assert_identical(&resumed.canonical_report(), "post-fsync-lie resume");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The worker executable cargo built alongside this test.
fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hobbit_shard"))
}

/// A sharded run under `--storage-chaos`: every shard's first incarnation
/// runs on a decorrelated fault schedule. A shard that trips a persistent
/// fault self-quarantines (exits without a done marker), the coordinator
/// revokes and respawns it on a clean disk, and the merged report is
/// byte-identical to the single-process run.
#[test]
fn sharded_chaos_self_quarantines_respawns_and_merges_identical() {
    let shards = 4;
    let dir = run_dir("sharded");
    let mut cfg = CoordinatorConfig::new(&dir, shards);
    cfg.seed = SEED;
    cfg.scale = SCALE;
    cfg.threads = 2;
    cfg.worker_exe = Some(worker_exe());
    cfg.storage_chaos = Some((0x57A6_E105, 0.02));
    let reg = Registry::new();
    let report = run_sharded(&cfg, &reg).expect("chaos shards must respawn clean and finish");
    assert_identical(&report, "sharded chaos merge");
    // The published report survives chaos too: temp + rename, whole bytes.
    assert_eq!(
        std::fs::read_to_string(dir.join(REPORT_FILE)).unwrap(),
        report
    );
    // After the run every shard is sealed and its journal replays clean.
    for shard in 0..shards {
        let sd = shard_dir(&dir, shard);
        assert!(is_done(&sd), "shard {shard} has no done marker");
        assert_valid_prefix(&sd, &format!("sharded chaos shard {shard}"));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `hobbit-conform --regen` corpus writes stay atomic under chaos: a torn
/// rename heals through the retry, and a full disk leaves the previously
/// pinned entry byte-for-byte untouched — never a half-written file.
#[test]
fn corpus_regen_is_atomic_under_chaos() {
    let dir = run_dir("corpus");
    std::fs::create_dir_all(&dir).unwrap();
    let (name, spec) = &golden_specs()[0];
    let entry = CorpusEntry {
        name: name.to_string(),
        spec: spec.clone(),
        expected: vec![],
    };
    let path = dir.join(format!("{name}.json"));

    // Healable torn rename (a complete copy lands but the call errors,
    // source lingering): the retried rename finds the source and heals.
    let storage = Storage::with_chaos(ChaosVfs::scripted(vec![(
        OpKind::Rename,
        0,
        FaultKind::TornRename,
    )]));
    entry.save_via(&storage, &path).unwrap(); // rename 0 tears, retry heals
    assert_eq!(CorpusEntry::load(&path).unwrap(), entry);
    let mut changed = entry.clone();
    changed.expected.push(testkit::ExpectedBlock {
        block: testkit::ScenarioSpec::block24(0),
        verdict: hobbit::Classification::SameLasthop,
        lasthops: vec![netsim::Addr::new(10, 100, 0, 10)],
    });
    changed.save_via(&storage, &path).unwrap(); // rename 1+: clean
    assert_eq!(CorpusEntry::load(&path).unwrap(), changed);

    // A full disk: the regen fails, and the pinned entry is untouched.
    let pinned = std::fs::read_to_string(&path).unwrap();
    let full = Storage::with_chaos(ChaosVfs::scripted(vec![(
        OpKind::Write,
        0,
        FaultKind::Enospc,
    )]));
    let mut newer = changed.clone();
    newer.expected.clear();
    assert!(newer.save_via(&full, &path).is_err());
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        pinned,
        "a failed regen must leave the pinned corpus entry untouched"
    );
    // Unhealable torn rename (the temp source vanishes and no copy ever
    // lands): the save fails, but the pinned entry still reads back whole.
    let torn = Storage::with_chaos(ChaosVfs::scripted(vec![(
        OpKind::Rename,
        1,
        FaultKind::TornRename,
    )]));
    newer.save_via(&torn, &dir.join("scratch.json")).unwrap(); // rename 0: clean
    assert!(newer.save_via(&torn, &path).is_err()); // rename 1: source gone
    assert_eq!(CorpusEntry::load(&path).unwrap(), changed);
    std::fs::remove_dir_all(&dir).unwrap();
}
