//! Differential property tests: the flat dense-layout kernels
//! (`hobbit::layout`, the sorted-`Vec` aggregation paths) must be
//! extensionally equal to the pre-flat `BTreeMap`/`HashMap` kernels
//! preserved verbatim in `testkit::baseline`, on arbitrary scenarios.
//!
//! This is independent of the conformance oracle: the oracle is a
//! deliberately naive reimplementation of the *paper*, while `baseline`
//! is the literal previous production code — together they pin the flat
//! rewrite from two directions.

use aggregate::{aggregate_identical, similarity_edges, Aggregate, HomogBlock};
use hobbit::{early_verdict, BlockLasthopData, BlockTable, ConfidenceTable, HobbitConfig, HostSet};
use netsim::{Addr, Block24};
use proptest::prelude::*;
use std::collections::BTreeSet;
use testkit::{
    baseline_aggregate_identical, baseline_early_verdict, baseline_similarity_edges, BaselineGroups,
};

fn lh(i: usize) -> Addr {
    Addr(0x0A00_0000 + i as u32)
}

/// Observations from (host, router-ids) assignments, possibly multihomed.
fn obs_of(assignments: &[(u8, Vec<usize>)]) -> Vec<(Addr, Vec<Addr>)> {
    assignments
        .iter()
        .map(|(h, gs)| {
            (
                Block24(0x0B_0000).addr(*h),
                gs.iter().map(|&g| lh(g)).collect(),
            )
        })
        .collect()
}

/// Sort merged groups into a canonical set-of-sets for comparison (the
/// two implementations enumerate union-find roots in different orders).
fn canonical(mut groups: Vec<Vec<Addr>>) -> Vec<Vec<Addr>> {
    groups.sort();
    groups
}

/// A small calibrated confidence table so the Hierarchical early-exit
/// branch is actually exercised (the empty table never terminates it).
fn calibrated() -> ConfidenceTable {
    let dataset: Vec<BlockLasthopData> = (0..8)
        .map(|i| BlockLasthopData {
            per_addr: (0..40)
                .map(|j| {
                    let host = (j % 254 + 1) as u8;
                    (Block24(0x0C_0000).addr(host), vec![lh(j % (2 + i % 4))])
                })
                .collect(),
        })
        .collect();
    ConfidenceTable::build(&dataset, 24, 16, 0.95, 8, 7)
}

proptest! {
    /// Grouping, merging, cardinality, relationship and the §4.2
    /// disjoint-aligned test agree between the flat table and the old
    /// `BTreeMap` groups on arbitrary (multihomed) observations.
    #[test]
    fn flat_grouping_matches_baseline(
        assignments in proptest::collection::vec(
            (0u8..=255, proptest::collection::vec(0usize..8, 1..4)), 0..40),
    ) {
        let obs = obs_of(&assignments);
        let table = BlockTable::from_observations(obs.iter().map(|(a, l)| (*a, l.as_slice())));
        let base = BaselineGroups::build(obs.iter().map(|(a, l)| (*a, l.as_slice())));
        prop_assert_eq!(table.cardinality(), base.cardinality());
        prop_assert_eq!(table.lasthop_set(), base.lasthops().collect::<Vec<_>>());
        prop_assert_eq!(
            canonical(table.merged_members()),
            canonical(base.merged_members())
        );
        prop_assert_eq!(table.relationship(), base.relationship());
        prop_assert_eq!(table.disjoint_and_aligned(), base.disjoint_and_aligned());
    }

    /// The incremental early-termination verdict equals the old
    /// rebuild-from-scratch one at every prefix of a measurement stream,
    /// under both the empty and a calibrated confidence table.
    #[test]
    fn flat_early_verdict_matches_baseline(
        assignments in proptest::collection::vec(
            (0u8..=255, proptest::collection::vec(0usize..6, 1..3)), 1..25),
    ) {
        let obs = obs_of(&assignments);
        let cfg = HobbitConfig::default();
        for conf in [ConfidenceTable::empty(), calibrated()] {
            let mut table = BlockTable::new(Block24(0x0B_0000));
            let mut per_dest: Vec<(Addr, Vec<Addr>)> = Vec::new();
            for (dst, lasthops) in &obs {
                table.add(*dst, lasthops);
                per_dest.push((*dst, lasthops.clone()));
                prop_assert_eq!(
                    early_verdict(&table, per_dest.len(), &conf, &cfg),
                    baseline_early_verdict(&per_dest, &conf, &cfg)
                );
            }
        }
    }

    /// Interned-id similarity edges equal the old hash-indexed ones —
    /// same pairs, same order, same weights.
    #[test]
    fn flat_similarity_matches_baseline(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0usize..12, 0..6), 0..30),
    ) {
        let aggs: Vec<Aggregate> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| Aggregate {
                lasthops: s.iter().map(|&g| lh(g)).collect(),
                blocks: vec![Block24(i as u32)],
            })
            .collect();
        let plain: Vec<Vec<Addr>> = aggs.iter().map(|a| a.lasthops.clone()).collect();
        prop_assert_eq!(similarity_edges(&aggs), baseline_similarity_edges(&plain));
    }

    /// Sort-based identical-set aggregation reproduces the `BTreeMap`
    /// output exactly, including presentation order.
    #[test]
    fn flat_identical_matches_baseline(
        blocks in proptest::collection::vec(
            (0u32..50, proptest::collection::vec(0usize..6, 0..4)), 0..40),
    ) {
        let world: Vec<HomogBlock> = blocks
            .iter()
            .map(|(b, gs)| {
                HomogBlock::new(Block24(*b), gs.iter().map(|&g| lh(g)).collect())
            })
            .collect();
        let pairs: Vec<(Block24, Vec<Addr>)> = world
            .iter()
            .map(|b| (b.block, b.lasthops.clone()))
            .collect();
        let flat: Vec<(Vec<Addr>, Vec<Block24>)> = aggregate_identical(&world)
            .into_iter()
            .map(|a| (a.lasthops, a.blocks))
            .collect();
        prop_assert_eq!(flat, baseline_aggregate_identical(&pairs));
    }

    /// The 256-bit member bitset agrees with a `BTreeSet` model on every
    /// queried operation.
    #[test]
    fn hostset_matches_set_model(
        a in proptest::collection::btree_set(0u8..=255, 0..64),
        b in proptest::collection::btree_set(0u8..=255, 0..64),
        lo in 0u8..=255,
        hi in 0u8..=255,
    ) {
        let of = |s: &BTreeSet<u8>| {
            let mut hs = HostSet::default();
            for &h in s {
                hs.insert(h);
            }
            hs
        };
        let (ha, hb) = (of(&a), of(&b));
        prop_assert_eq!(ha.count() as usize, a.len());
        prop_assert_eq!(ha.min(), a.iter().next().copied());
        prop_assert_eq!(ha.max(), a.iter().next_back().copied());
        prop_assert_eq!(ha.iter().collect::<Vec<_>>(), a.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(ha.intersects(&hb), !a.is_disjoint(&b));
        prop_assert_eq!(ha.intersection_count(&hb) as usize, a.intersection(&b).count());
        // `range` over the raw pair: an inverted range (lo > hi) is the
        // empty set, matching `lo..=hi` iteration semantics.
        let mask = HostSet::range(lo, hi);
        if lo > hi {
            prop_assert_eq!(mask, HostSet::EMPTY);
        }
        prop_assert_eq!(
            mask.intersection_count(&ha) as usize,
            if lo <= hi { a.range(lo..=hi).count() } else { 0 }
        );
    }
}
