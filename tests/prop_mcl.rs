//! Property tests for the MCL implementation and the aggregation algebra.

use aggregate::{aggregate_identical, similarity, similarity_edges, Aggregate, HomogBlock};
use mcl::{connected_components, mcl, mcl_by_components, LoopScheme, MclParams, SparseMatrix};
use netsim::{Addr, Block24};
use proptest::prelude::*;

fn arb_edges(n: usize) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, 0.05f64..1.0), 0..(n * 2).max(1))
}

proptest! {
    /// MCL clusters always partition the vertex set.
    #[test]
    fn clusters_partition(n in 2usize..14, edges in arb_edges(12)) {
        let edges: Vec<_> = edges
            .into_iter()
            .filter(|&(a, b, _)| (a as usize) < n && (b as usize) < n)
            .collect();
        let c = mcl(n, &edges, &MclParams::default());
        let mut seen = vec![false; n];
        for cluster in &c.clusters {
            for &v in cluster {
                prop_assert!(!seen[v as usize], "vertex {v} clustered twice");
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// MCL never clusters across connected components, and per-component
    /// runs agree with the whole-graph run.
    #[test]
    fn component_consistency(n in 2usize..12, edges in arb_edges(10)) {
        let edges: Vec<_> = edges
            .into_iter()
            .filter(|&(a, b, _)| (a as usize) < n && (b as usize) < n)
            .collect();
        let comps = connected_components(n, &edges);
        let comp_of = {
            let mut v = vec![0usize; n];
            for (ci, comp) in comps.iter().enumerate() {
                for &x in comp {
                    v[x as usize] = ci;
                }
            }
            v
        };
        let whole = mcl(n, &edges, &MclParams::default());
        for cluster in &whole.clusters {
            let c0 = comp_of[cluster[0] as usize];
            for &v in cluster {
                prop_assert_eq!(comp_of[v as usize], c0, "cluster spans components");
            }
        }
        let split = mcl_by_components(n, &edges, &MclParams::default());
        let mut wc = whole.clusters.clone();
        wc.sort();
        prop_assert_eq!(wc, split.clusters);
    }

    /// Normalization + expansion preserve column-stochasticity.
    #[test]
    fn stochastic_invariant(n in 2usize..10, edges in arb_edges(8)) {
        let edges: Vec<_> = edges
            .into_iter()
            .filter(|&(a, b, _)| (a as usize) < n && (b as usize) < n)
            .collect();
        let mut m = SparseMatrix::from_edges(n, &edges, LoopScheme::MaxColumn);
        m.normalize_columns();
        prop_assert!(m.is_column_stochastic(1e-9));
        let sq = m.squared();
        prop_assert!(sq.is_column_stochastic(1e-6), "squaring broke stochasticity");
        let mut infl = sq;
        infl.inflate(2.0, 1e-6);
        prop_assert!(infl.is_column_stochastic(1e-9), "inflation broke stochasticity");
    }

    /// The similarity score is a bounded, symmetric overlap measure that is
    /// 1 exactly on identical sets.
    #[test]
    fn similarity_properties(
        a in proptest::collection::btree_set(0u32..40, 0..10),
        b in proptest::collection::btree_set(0u32..40, 0..10),
    ) {
        let va: Vec<Addr> = a.iter().map(|&x| Addr(x)).collect();
        let vb: Vec<Addr> = b.iter().map(|&x| Addr(x)).collect();
        let s = similarity(&va, &vb);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(s, similarity(&vb, &va));
        if !va.is_empty() {
            prop_assert_eq!(similarity(&va, &va), 1.0);
        }
        if s == 1.0 {
            prop_assert_eq!(&va, &vb);
        }
        let disjoint = a.intersection(&b).count() == 0;
        prop_assert_eq!(s == 0.0, disjoint || va.is_empty() || vb.is_empty());
    }

    /// Identical-set aggregation: every input block lands in exactly one
    /// aggregate whose set equals the block's set.
    #[test]
    fn aggregation_is_a_partition(
        blocks in proptest::collection::vec(
            (0u32..1000, proptest::collection::btree_set(0u32..6, 1..4)),
            1..30,
        ),
    ) {
        let input: Vec<HomogBlock> = blocks
            .iter()
            .map(|(b, set)| {
                HomogBlock::new(Block24(*b), set.iter().map(|&x| Addr(x)).collect())
            })
            .collect();
        let aggs = aggregate_identical(&input);
        // Every distinct input block appears exactly once.
        let mut out_blocks: Vec<Block24> = aggs.iter().flat_map(|a| a.blocks.clone()).collect();
        out_blocks.sort();
        let mut in_blocks: Vec<Block24> = input.iter().map(|h| h.block).collect();
        in_blocks.sort();
        in_blocks.dedup_by(|a, b| a == b); // duplicate blocks merge
        // (a duplicated block with different sets may appear twice; allow)
        for agg in &aggs {
            for blk in &agg.blocks {
                let matching = input
                    .iter()
                    .any(|h| h.block == *blk && h.lasthops == agg.lasthops);
                prop_assert!(matching, "aggregate set must match a member's set");
            }
        }
        prop_assert!(out_blocks.len() >= in_blocks.len());
    }

    /// The similarity graph has an edge exactly for overlapping aggregates.
    #[test]
    fn similarity_edges_iff_overlap(
        sets in proptest::collection::vec(proptest::collection::btree_set(0u32..8, 1..4), 2..10),
    ) {
        let aggs: Vec<Aggregate> = sets
            .iter()
            .enumerate()
            .map(|(i, s)| Aggregate {
                lasthops: s.iter().map(|&x| Addr(x)).collect(),
                blocks: vec![Block24(i as u32)],
            })
            .collect();
        let edges = similarity_edges(&aggs);
        for i in 0..aggs.len() {
            for j in 0..i {
                let overlap = sets[i].intersection(&sets[j]).count() > 0;
                let edge = edges
                    .iter()
                    .any(|&(a, b, _)| (a, b) == (j as u32, i as u32) || (a, b) == (i as u32, j as u32));
                prop_assert_eq!(edge, overlap, "edge ({}, {})", i, j);
            }
        }
    }
}
