//! Property tests for the MDA machinery behind both probing modes: the
//! stopping-rule ladder is monotone in the hypothesis count, diamond
//! detection is a function of the per-TTL interface *sets* (invariant
//! under any reordering of the discovered paths), and MDA-Lite never
//! spends more probes than classic MDA on any fault-free block.

use experiments::classify_blocks;
use hobbit::{select_all, BlockMeasurement, ConfidenceTable, HobbitConfig};
use netsim::{Addr, SharedNetwork};
use probe::{detect_diamonds, zmap, MdaMode, MdaPaths, Path, StoppingRule};
use proptest::prelude::*;
use testkit::scenario::{build_world, gen_spec};

/// A small per-flow path set over a 12-interface universe: short paths so
/// random sets actually overlap per TTL, with the top value of the raw
/// range standing in for a wildcard (`None`) hop.
fn arb_paths() -> impl Strategy<Value = Vec<Path>> {
    collection::vec(collection::vec(0u32..13, 1..10), 1..8).prop_map(|paths| {
        paths
            .into_iter()
            .map(|hops| Path {
                hops: hops
                    .into_iter()
                    .map(|n| (n < 12).then(|| Addr(0x0A00_0000 + n)))
                    .collect(),
            })
            .collect()
    })
}

fn paths_to_mda(paths: Vec<Path>) -> MdaPaths {
    MdaPaths {
        dst: Addr::new(198, 51, 100, 7),
        paths,
        reached: false,
        dst_distance: None,
        traces: Vec::new(),
    }
}

/// Classify one generated world end to end in a forced mode, single
/// threaded, faults off.
fn classify_in_mode(seed: u64, mode: MdaMode) -> Vec<BlockMeasurement> {
    let spec = gen_spec(seed).with_faults(0.0, 0.0);
    let mut world = build_world(&spec);
    let snapshot = zmap::scan_all(&mut world.network);
    let selected = select_all(&snapshot);
    let cfg = HobbitConfig {
        mda_mode: mode,
        ..HobbitConfig::default()
    };
    let shared = SharedNetwork::new(world.network);
    classify_blocks(&shared, &selected, &ConfidenceTable::empty(), &cfg, 1).0
}

/// Fixed anchor from the paper: at 95% confidence the rule sends 6 probes
/// to reject a second next-hop after seeing one.
#[test]
fn confidence95_anchor_is_six_probes_for_one_hypothesis() {
    assert_eq!(StoppingRule::confidence95().probes_needed(1), 6);
}

proptest! {
    /// `probes_needed` is 1 at k = 0 (the liveness probe) and monotone
    /// nondecreasing in the hypothesis count for any sane alpha — ruling
    /// out a ladder where widening a diamond could *lower* the budget and
    /// stop enumeration early.
    #[test]
    fn probes_needed_is_monotone_in_hypotheses(
        alpha in 0.001f64..0.5,
        kmax in 1usize..64,
    ) {
        let rule = StoppingRule { alpha };
        prop_assert_eq!(rule.probes_needed(0), 1);
        let mut prev = rule.probes_needed(0);
        for k in 1..=kmax {
            let n = rule.probes_needed(k);
            prop_assert!(
                n >= prev,
                "probes_needed({k}) = {n} < probes_needed({}) = {prev} at alpha {alpha}",
                k - 1
            );
            prev = n;
        }
    }

    /// Diamond detection sees per-TTL interface sets, not path order: any
    /// permutation of the discovered paths (equivalently, of the flow
    /// labels that found them) yields the identical diamond list.
    #[test]
    fn diamond_detection_is_invariant_under_path_permutation(
        paths in arb_paths(),
        rotate in 0usize..8,
        reverse in any::<bool>(),
    ) {
        let base = detect_diamonds(&paths_to_mda(paths.clone()));
        let mut permuted = paths;
        let r = rotate % permuted.len().max(1);
        permuted.rotate_left(r);
        if reverse {
            permuted.reverse();
        }
        let shuffled = detect_diamonds(&paths_to_mda(permuted));
        prop_assert_eq!(base, shuffled);
    }

    /// On a fault-free world MDA-Lite is a pure shortcut: block for block
    /// it never spends more probes than classic MDA. (Each case is a full
    /// build/classify cycle in both modes, on top of the 40-seed
    /// differential sweep in tests/mda_lite.rs — the case count is the
    /// crate-wide deterministic default.)
    #[test]
    fn lite_never_probes_more_than_classic(seed in 0u64..5_000) {
        let classic = classify_in_mode(seed, MdaMode::Classic);
        let lite = classify_in_mode(seed, MdaMode::Lite);
        prop_assert_eq!(classic.len(), lite.len());
        for (c, l) in classic.iter().zip(&lite) {
            prop_assert_eq!(c.block, l.block);
            prop_assert!(
                l.probes_used <= c.probes_used,
                "seed {seed} block {:?}: lite spent {} probes, classic {}",
                c.block,
                l.probes_used,
                c.probes_used
            );
        }
    }
}
