//! MDA-Lite drift sweep: the lite probing mode must stay oracle-clean,
//! spend no more probes than classic MDA on any fault-free block, cut the
//! aggregate probe budget by a pinned floor, and disagree with classic
//! classification on at most a pinned ceiling of blocks — with the
//! disagreements themselves reported through the `Mismatch` taxonomy so a
//! regression names the block and both verdicts, not just a rate.

use experiments::classify_blocks;
use hobbit::{BlockMeasurement, ConfidenceTable, HobbitConfig, SelectedBlock};
use netsim::SharedNetwork;
use probe::MdaMode;
use std::path::{Path, PathBuf};
use testkit::corpus::load_dir;
use testkit::diff::{run_spec, Mismatch};
use testkit::scenario::{gen_spec, DynamicsSpec, ScenarioSpec};
use testkit::shrink::shrink;

/// Thread counts both modes must agree across internally.
const THREADS: &[usize] = &[1, 8];

/// The loss axis of the fuzzed sweep.
const FAULT_LOSS: f32 = 0.02;

/// Ceiling on cross-mode drift: blocks whose (verdict, last-hop set)
/// differs between classic and lite, over all blocks swept. The issue's
/// acceptance bar is 1%.
const DRIFT_CEILING: f64 = 0.01;

/// Floor on the aggregate probe saving of lite over classic across the
/// fault-free sweep: classic must spend at least this multiple of lite's
/// probes. Measured 2.51x on the golden corpus and 2.46x on the fuzzed
/// sweep; pinned with headroom below the observed value so real
/// regressions fail while topology drift does not.
const SAVINGS_FLOOR: f64 = 2.0;

/// The production engine in the shape the differential runner injects.
fn production(
    net: &SharedNetwork,
    selected: &[SelectedBlock],
    confidence: &ConfidenceTable,
    cfg: &HobbitConfig,
    threads: usize,
) -> Vec<BlockMeasurement> {
    classify_blocks(net, selected, confidence, cfg, threads).0
}

/// Fuzzed-scenario count: `HOBBIT_MDA_CASES` or 40.
fn cases() -> usize {
    std::env::var("HOBBIT_MDA_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// The same world probed in one forced mode.
fn in_mode(spec: &ScenarioSpec, mode: MdaMode) -> ScenarioSpec {
    ScenarioSpec {
        mda_mode: mode,
        ..spec.clone()
    }
}

/// Running totals of one classic-vs-lite sweep.
#[derive(Default)]
struct Drift {
    /// Blocks compared across modes.
    blocks: usize,
    /// Cross-mode disagreements, in `Mismatch` taxonomy terms (`production`
    /// holds the lite result, `oracle` the classic one).
    mismatches: Vec<Mismatch>,
    /// Probe totals over fault-free specs only (fault injection interacts
    /// with the retry ladder, so faulted probe counts are not comparable
    /// probe-for-probe across modes).
    classic_probes: u64,
    lite_probes: u64,
}

impl Drift {
    fn rate(&self) -> f64 {
        if self.blocks == 0 {
            return 0.0;
        }
        self.mismatches.len() as f64 / self.blocks as f64
    }

    fn savings(&self) -> f64 {
        self.classic_probes as f64 / self.lite_probes.max(1) as f64
    }
}

/// Where shrunk reproducers of diverging specs land: `HOBBIT_MDA_DIR`
/// (the CI `mda-conformance` job points it at its artifact dir) or
/// `target/mda-failures/` locally.
fn fail_dir() -> PathBuf {
    std::env::var("HOBBIT_MDA_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("target/mda-failures"))
}

/// Delta-debug `spec` down to a minimal scenario still failing `fails`
/// and write it as a seed file, returning the path for the panic message.
/// Only runs on the failure path, so the dual-mode rerun per candidate
/// edit is acceptable.
fn dump_shrunk(name: &str, spec: &ScenarioSpec, fails: &dyn Fn(&ScenarioSpec) -> bool) -> PathBuf {
    let min = shrink(spec, fails);
    let dir = fail_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{}.json", name.replace(' ', "_")));
    let json = serde_json::to_string_pretty(&min).expect("spec serializes");
    std::fs::write(&path, json).expect("reproducer writes");
    path
}

/// Whether the two modes disagree anywhere on (verdict, last-hop set) —
/// the shrink predicate for a drifting spec.
fn modes_drift(spec: &ScenarioSpec) -> bool {
    let c = run_spec(&in_mode(spec, MdaMode::Classic), &[1], &production, None);
    let l = run_spec(&in_mode(spec, MdaMode::Lite), &[1], &production, None);
    c.measurements.len() != l.measurements.len()
        || c.measurements
            .iter()
            .zip(&l.measurements)
            .any(|(c, l)| c.classification != l.classification || c.lasthop_set != l.lasthop_set)
}

/// Whether some block spends more probes under lite than under classic —
/// the shrink predicate for a probe-monotonicity violation.
fn lite_overspends(spec: &ScenarioSpec) -> bool {
    let c = run_spec(&in_mode(spec, MdaMode::Classic), &[1], &production, None);
    let l = run_spec(&in_mode(spec, MdaMode::Lite), &[1], &production, None);
    c.measurements.len() == l.measurements.len()
        && c.measurements
            .iter()
            .zip(&l.measurements)
            .any(|(c, l)| l.probes_used > c.probes_used)
}

/// Run one spec under both modes, fold the comparison into `drift`, and
/// enforce the per-spec invariants (oracle-clean in both modes, per-block
/// probe monotonicity when fault-free, byte-identical projections when the
/// spec shows zero drift).
fn sweep_spec(name: &str, spec: &ScenarioSpec, drift: &mut Drift) {
    let classic = run_spec(&in_mode(spec, MdaMode::Classic), THREADS, &production, None);
    let lite = run_spec(&in_mode(spec, MdaMode::Lite), THREADS, &production, None);
    // Both modes must pass the full oracle (replay verdicts, last-hop
    // recomputation, counter identities, aggregation) on their own.
    assert!(classic.clean(), "{name} classic: {:?}", classic.mismatches);
    assert!(lite.clean(), "{name} lite: {:?}", lite.mismatches);

    assert_eq!(
        classic.measurements.len(),
        lite.measurements.len(),
        "{name}: modes disagree on the selected block set"
    );
    let fault_free = !spec.faults().is_active();
    let mut spec_drift = 0usize;
    for (c, l) in classic.measurements.iter().zip(&lite.measurements) {
        assert_eq!(c.block, l.block, "{name}: block order diverged");
        drift.blocks += 1;
        if fault_free {
            if l.probes_used > c.probes_used {
                let at = dump_shrunk(name, spec, &lite_overspends);
                panic!(
                    "{name} {:?}: lite spent {} probes, classic {} — shrunk reproducer at {}",
                    c.block,
                    l.probes_used,
                    c.probes_used,
                    at.display()
                );
            }
            drift.classic_probes += c.probes_used;
            drift.lite_probes += l.probes_used;
        }
        if l.classification != c.classification {
            spec_drift += 1;
            drift.mismatches.push(Mismatch::Verdict {
                block: c.block,
                production: l.classification,
                oracle: c.classification,
            });
        } else if l.lasthop_set != c.lasthop_set {
            spec_drift += 1;
            drift.mismatches.push(Mismatch::LasthopSet {
                block: c.block,
                production: l.lasthop_set.clone(),
                oracle: c.lasthop_set.clone(),
            });
        }
    }
    // Measured drift is zero, so any drifting spec is worth a shrunk
    // reproducer on disk even while the aggregate rate stays under the
    // ceiling — the artifact names the minimal world, the `Mismatch` the
    // block and both verdicts.
    if spec_drift > 0 {
        let at = dump_shrunk(name, spec, &modes_drift);
        eprintln!(
            "mda_lite: {name} drifts; shrunk reproducer at {}",
            at.display()
        );
    }
    // Where a spec drifts nowhere, the classification *reports* must be
    // byte-identical — probe spend may differ, the outcome may not.
    if spec_drift == 0 {
        let project = |ms: &[BlockMeasurement]| {
            let rows: Vec<_> = ms
                .iter()
                .map(|m| (m.block, m.classification, m.lasthop_set.clone()))
                .collect();
            serde_json::to_string(&rows).expect("projection serializes")
        };
        assert_eq!(
            project(&classic.measurements),
            project(&lite.measurements),
            "{name}: zero-drift spec produced byte-different reports"
        );
    }
}

fn finish(label: &str, drift: &Drift) {
    eprintln!(
        "mda_lite {label}: blocks={} drift={} ({:.4}) savings={:.2}x (classic {} vs lite {} probes)",
        drift.blocks,
        drift.mismatches.len(),
        drift.rate(),
        drift.savings(),
        drift.classic_probes,
        drift.lite_probes
    );
    assert!(
        drift.rate() <= DRIFT_CEILING,
        "{label}: drift rate {:.4} over ceiling {DRIFT_CEILING}: {:?}",
        drift.rate(),
        drift.mismatches
    );
    assert!(
        drift.savings() >= SAVINGS_FLOOR,
        "{label}: probe savings {:.2}x under floor {SAVINGS_FLOOR}x",
        drift.savings()
    );
}

#[test]
fn golden_corpus_classic_vs_lite_drift() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("golden corpus loads");
    assert!(
        entries.len() >= 28,
        "golden corpus shrank to {} entries",
        entries.len()
    );
    let mut drift = Drift::default();
    // Static specs only: on a time-evolving world the two modes spend
    // different probe budgets, so the same scheduled events land at
    // different points of each campaign — classic and lite then measure
    // genuinely different worlds and cross-mode drift is not a lite
    // regression. The dynamic corpus is conformance-swept (each mode
    // against the oracle, across threads) in tests/dynamics.rs instead.
    for entry in entries.iter().filter(|e| e.spec.dynamics.is_static()) {
        sweep_spec(&entry.name, &entry.spec, &mut drift);
    }
    finish("corpus", &drift);
}

#[test]
fn fuzzed_scenarios_classic_vs_lite_drift() {
    let n = cases();
    let mut drift = Drift::default();
    for i in 0..n {
        let mut spec = gen_spec(41_000 + i as u64);
        // The cross-mode comparison requires a frozen world (see the
        // corpus sweep above); dynamic fuzz coverage lives in
        // tests/dynamics.rs.
        spec.dynamics = DynamicsSpec::default();
        // Alternate the loss axis so half the sweep runs faulted (faulted
        // specs contribute drift counts but not probe totals).
        if i % 2 == 1 {
            spec = spec.with_faults(FAULT_LOSS, 0.0);
        }
        sweep_spec(&format!("seed {}", spec.seed), &spec, &mut drift);
    }
    finish("fuzzed", &drift);
}
