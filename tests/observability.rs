//! Workspace tests pinning the observability layer.
//!
//! Three contracts from DESIGN.md §10:
//!
//! 1. the exported metrics document has the versioned
//!    `hobbit-metrics/v1` shape with a fixed key set;
//! 2. everything outside the `timing` key is byte-identical across
//!    thread counts, even under fault injection (the determinism
//!    contract — the acceptance bar is `--threads 1` vs `--threads 8`
//!    with `--faults 0.02,tb`);
//! 3. span timings are sane: hierarchical paths, positive entry counts,
//!    children nested inside `run`.

use experiments::args::ExpArgs;
use experiments::Pipeline;
use obs::{strip_timing, Registry, SCHEMA};
use std::sync::Arc;

/// A small observed pipeline run (faults on, like the acceptance bar).
fn observed(threads: usize) -> Pipeline {
    Pipeline::builder()
        .seed(7)
        .scale(0.01)
        .threads(threads)
        .faults(0.02, 0.5)
        .observe()
        .run()
}

fn registry(p: &Pipeline) -> &Arc<Registry> {
    p.obs.as_ref().expect("observe() keeps the registry")
}

#[test]
fn metrics_document_schema_is_pinned() {
    let p = observed(2);
    let doc = registry(&p).export();

    // Top-level shape: exactly these keys, in this (sorted) order.
    let obj = match &doc {
        serde_json::Value::Object(m) => m,
        other => panic!("metrics document must be an object, got {other:?}"),
    };
    let keys: Vec<&str> = obj.keys().map(|k| k.as_str()).collect();
    assert_eq!(
        keys,
        ["counters", "gauges", "histograms", "schema", "timing"],
        "top-level key set is part of the schema"
    );
    assert_eq!(doc["schema"].as_str(), Some(SCHEMA));

    // Counter names every observed pipeline run must emit.
    for name in [
        "probe.sent",
        "probe.drops",
        "probe.retries",
        "probe.backoff_us",
        "net.probes_carried",
        "net.link_drops",
        "net.rate_limited_drops",
        "net.icmp_loss_drops",
        "select.selected",
        "select.reject_too_few",
        "select.reject_uncovered",
        "calibrate.dataset_blocks",
        "calibrate.probes",
        "classify.blocks",
        "classify.dests_probed",
        "classify.verdict.too-few-active",
        "classify.verdict.unresponsive-lasthop",
        "classify.verdict.same-lasthop",
        "classify.verdict.non-hierarchical",
        "classify.verdict.hierarchical",
        "supervise.panics_caught",
        "supervise.stalls_cancelled",
        "supervise.requeues",
        "supervise.quarantined",
        "supervise.resumed_blocks",
        "journal.appends",
        "journal.fsyncs",
        "journal.truncated_tail",
    ] {
        assert!(
            doc["counters"].get(name).and_then(|v| v.as_u64()).is_some(),
            "counter {name:?} missing from the document"
        );
    }

    // Histogram entries carry buckets + count + sum.
    let rtt = &doc["histograms"]["probe.rtt_us"];
    assert!(rtt["count"].as_u64().unwrap() > 0);
    assert!(rtt["sum"].as_u64().unwrap() > 0);
    assert!(!rtt["buckets"].as_array().unwrap().is_empty());

    // Timing holds spans and scheduling values, and nothing else.
    let timing = match &doc["timing"] {
        serde_json::Value::Object(m) => m,
        other => panic!("timing must be an object, got {other:?}"),
    };
    let tkeys: Vec<&str> = timing.keys().map(|k| k.as_str()).collect();
    assert_eq!(tkeys, ["spans", "values"]);

    // Cross-check a few counters against the pipeline's own accounting.
    let reg = registry(&p);
    use obs::Recorder;
    assert_eq!(
        reg.counter("select.selected").get(),
        p.selected.len() as u64
    );
    assert_eq!(
        reg.counter("classify.blocks").get(),
        p.measurements.len() as u64
    );
    assert_eq!(reg.counter("calibrate.probes").get(), p.calibration_probes);
}

#[test]
fn count_metrics_byte_identical_across_thread_counts_under_faults() {
    // The acceptance bar, driven through the CLI argument surface the
    // binaries use: --threads {1,8} --faults 0.02,tb --metrics <file>.
    let dir = std::env::temp_dir();
    let m1_path = dir.join("hobbit-obs-test-m1.json");
    let m8_path = dir.join("hobbit-obs-test-m8.json");
    let args_for = |threads: usize, path: &std::path::Path| -> ExpArgs {
        ExpArgs::parse_from(
            [
                "--seed",
                "7",
                "--scale",
                "0.01",
                "--threads",
                &threads.to_string(),
                "--faults",
                "0.02,tb",
                "--metrics",
                path.to_str().unwrap(),
            ]
            .map(String::from),
        )
        .expect("valid CLI tokens")
    };

    let a1 = args_for(1, &m1_path);
    let a8 = args_for(8, &m8_path);
    let _p1 = Pipeline::builder().args(&a1).run();
    let _p8 = Pipeline::builder().args(&a8).run();

    let read = |path: &std::path::Path| -> (String, serde_json::Value) {
        let text = std::fs::read_to_string(path).expect("metrics file written");
        let doc = serde_json::from_str(&text).expect("metrics file parses");
        (text, doc)
    };
    let (t1, d1) = read(&m1_path);
    let (t8, d8) = read(&m8_path);
    let _ = std::fs::remove_file(&m1_path);
    let _ = std::fs::remove_file(&m8_path);

    // Outside `timing`, the documents are byte-identical.
    assert_eq!(
        strip_timing(&d1).to_json_pretty(),
        strip_timing(&d8).to_json_pretty(),
        "metric values must not depend on the thread count"
    );
    // And the full files differ only because of `timing` (they contain
    // wall-clock durations and per-worker shares, so they almost surely
    // differ — but both must still parse to the same schema version).
    assert_eq!(d1["schema"], d8["schema"]);
    assert!(t1.contains("\"timing\""));
    assert!(t8.contains("\"timing\""));
}

#[test]
fn span_tree_is_hierarchical_and_sane() {
    let p = observed(2);
    let reg = registry(&p);
    let rows = reg.span_rows();
    assert!(!rows.is_empty());

    let stat = |path: &str| {
        rows.iter()
            .find(|(p, _)| p == path)
            .map(|(_, s)| *s)
            .unwrap_or_else(|| panic!("span {path:?} missing: {rows:?}"))
    };

    // The pipeline's phase spans all fire exactly once per run...
    for phase in [
        "run",
        "run/build",
        "run/snapshot",
        "run/select",
        "run/calibrate",
        "run/classify",
    ] {
        assert_eq!(stat(phase).count, 1, "{phase} entered once");
    }
    // ...and the per-block span once per classified block.
    assert_eq!(
        stat("run/classify/block").count,
        p.measurements.len() as u64
    );

    // Nesting: the run span covers each phase it contains. (Block spans
    // run concurrently on workers, so their *sum* may exceed the classify
    // wall-clock; the single-entry phases may not exceed the run.)
    let run_us = stat("run").total_us;
    for phase in ["run/build", "run/snapshot", "run/select", "run/calibrate"] {
        assert!(
            stat(phase).total_us <= run_us,
            "{phase} cannot outlast the run"
        );
    }

    // The rendered tree indents children under their parent.
    let tree = reg.render_span_tree();
    assert!(tree.lines().any(|l| l.starts_with("run ")));
    assert!(tree.lines().any(|l| l.starts_with("  classify ")));
    assert!(tree.lines().any(|l| l.starts_with("    block ")));
}
