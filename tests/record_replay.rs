//! The archive workflow end-to-end: record a live Hobbit classification,
//! then reproduce it from the log alone — no network.

use hobbit::{classify_block, select_all, ConfidenceTable, HobbitConfig};
use netsim::build::{build, ScenarioConfig};
use probe::{zmap, Prober};

#[test]
fn classification_reproduces_from_a_probe_archive() {
    let mut scenario = build(ScenarioConfig::tiny(42));
    let snapshot = zmap::scan_all(&mut scenario.network);
    let selected: Vec<_> = select_all(&snapshot).into_iter().take(25).collect();
    let table = ConfidenceTable::empty();
    let cfg = HobbitConfig::default();
    let vantage = scenario.network.vantage_addr();

    // Live run with recording on.
    let (live_results, log) = {
        let mut prober = Prober::new(&mut scenario.network, 0xA2);
        prober.start_recording();
        let results: Vec<_> = selected
            .iter()
            .map(|sel| classify_block(&mut prober, sel, &table, &cfg))
            .collect();
        (results, prober.take_log().expect("recording on"))
    };
    assert!(
        log.count > 1000,
        "a real archive, got {} attempts",
        log.count
    );

    // Replay from the archive: the network is gone.
    drop(scenario);
    let mut replayer = Prober::replayer(log, 0xA2, vantage);
    let replayed: Vec<_> = selected
        .iter()
        .map(|sel| classify_block(&mut replayer, sel, &table, &cfg))
        .collect();

    assert_eq!(replayer.replay_misses(), 0, "faithful replay never misses");
    assert_eq!(live_results.len(), replayed.len());
    for (live, replay) in live_results.iter().zip(&replayed) {
        assert_eq!(live.block, replay.block);
        assert_eq!(live.classification, replay.classification, "{}", live.block);
        assert_eq!(live.lasthop_set, replay.lasthop_set);
        assert_eq!(live.per_dest, replay.per_dest);
        assert_eq!(live.dests_probed, replay.dests_probed);
        assert_eq!(live.probes_used, replay.probes_used);
    }
}

#[test]
fn archive_survives_json_serialization() {
    let mut scenario = build(ScenarioConfig::tiny(7));
    let snapshot = zmap::scan_all(&mut scenario.network);
    let selected: Vec<_> = select_all(&snapshot).into_iter().take(3).collect();
    let table = ConfidenceTable::empty();
    let cfg = HobbitConfig::default();
    let vantage = scenario.network.vantage_addr();

    let (live, log) = {
        let mut prober = Prober::new(&mut scenario.network, 0xA3);
        prober.start_recording();
        let results: Vec<_> = selected
            .iter()
            .map(|sel| classify_block(&mut prober, sel, &table, &cfg))
            .collect();
        (results, prober.take_log().unwrap())
    };

    // Round-trip the archive through JSON (as a file on disk would).
    let json = serde_json::to_string(&log).expect("serializable");
    let restored: probe::ProbeLog = serde_json::from_str(&json).expect("parseable");
    assert_eq!(restored.count, log.count);

    let mut replayer = Prober::replayer(restored, 0xA3, vantage);
    for (sel, want) in selected.iter().zip(&live) {
        let got = classify_block(&mut replayer, sel, &table, &cfg);
        assert_eq!(got.classification, want.classification);
    }
    assert_eq!(replayer.replay_misses(), 0);
}
