//! Workspace tests for fault injection and loss-resilient probing.
//!
//! The acceptance bar: with seeded 2% per-link loss plus ICMP rate
//! limiting on every responsive router (last-hops included), the
//! homogeneous/heterogeneous verdicts must match a loss-free run of the
//! same scenario on at least 95% of probed /24s, and the fault counters
//! must be exact (totals are per-worker sums, with nothing lost).

use experiments::Pipeline;

fn baseline() -> Pipeline {
    Pipeline::builder().seed(7).scale(0.01).threads(4).run()
}

fn faulted(loss: f64, rate: f64) -> Pipeline {
    Pipeline::builder()
        .seed(7)
        .scale(0.01)
        .threads(4)
        .faults(loss, rate)
        .run()
}

#[test]
fn verdicts_survive_two_percent_loss_with_rate_limiting() {
    let clean = baseline();
    let lossy = faulted(0.02, 0.5);

    // Same snapshot, same selection: faults switch on after the scan.
    assert_eq!(clean.selected.len(), lossy.selected.len());
    assert_eq!(clean.measurements.len(), lossy.measurements.len());

    let mut agree = 0usize;
    let mut total = 0usize;
    for (a, b) in clean.measurements.iter().zip(&lossy.measurements) {
        assert_eq!(a.block, b.block);
        total += 1;
        if a.classification.is_homogeneous() == b.classification.is_homogeneous() {
            agree += 1;
        }
    }
    let frac = agree as f64 / total.max(1) as f64;
    assert!(
        frac >= 0.95,
        "verdict agreement {agree}/{total} = {frac:.3} under 2% loss"
    );

    // The faults were real, not a no-op configuration.
    assert!(lossy.net_stats.link_drops > 0, "{:?}", lossy.net_stats);
    assert!(
        lossy.net_stats.rate_limited_drops > 0,
        "token buckets must throttle some ICMP errors: {:?}",
        lossy.net_stats
    );
    assert!(lossy.total_drops() > clean.total_drops());
}

#[test]
fn fault_counters_sum_exactly_across_workers() {
    let p = faulted(0.02, 0.5);
    let drops: u64 = p.worker_stats.iter().map(|w| w.drops).sum();
    let retries: u64 = p.worker_stats.iter().map(|w| w.retries).sum();
    let backoff: u64 = p.worker_stats.iter().map(|w| w.backoff_us).sum();
    assert_eq!(p.total_drops(), drops);
    assert_eq!(p.total_retries(), retries);
    assert_eq!(p.total_backoff_us(), backoff);
    assert!(drops > 0 && retries > 0 && backoff > 0);
    // Every retry followed a drop, and probes outnumber retries.
    assert!(retries <= drops);
    assert!(p.classify_probes > retries);
}

#[test]
fn degradation_is_graceful_not_silent() {
    // Lost answers must surface as explicit unresolved counts (after the
    // reprobe pass), never vanish from the accounting.
    let p = faulted(0.05, 0.25);
    for m in &p.measurements {
        assert_eq!(
            m.dests_probed,
            m.dests_resolved + m.dests_anonymous + m.dests_unresolved,
            "block {}: probed dests must be fully accounted",
            m.block
        );
    }
    // At 5% loss some blocks exercise the targeted reprobe pass.
    let reprobes: usize = p.measurements.iter().map(|m| m.reprobes).sum();
    assert!(reprobes > 0, "reprobe pass should engage under heavy loss");
}
