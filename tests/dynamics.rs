//! Time-evolving world conformance and accuracy: a dynamic scenario must
//! stay oracle-clean and thread-invariant, a schedule with nothing in it
//! must leave the measurement bytes untouched, the ground-truth accuracy
//! harness must report identical drift rates at every thread count across
//! a churn-intensity sweep, and a dynamics-dependent failure must shrink
//! to a minimal reproducer that keeps exactly the offending event.

use experiments::classify_blocks;
use hobbit::{BlockMeasurement, ConfidenceTable, HobbitConfig, SelectedBlock};
use netsim::SharedNetwork;
use obs::Registry;
use std::path::{Path, PathBuf};
use testkit::corpus::load_dir;
use testkit::diff::run_spec;
use testkit::scenario::{gen_spec, DynamicsSpec, EventSpec, NetemKnobs, ScenarioSpec};
use testkit::shrink::shrink;
use testkit::{dynamics_accuracy, AccuracyObs, AccuracyReport};

/// Thread counts every dynamic scenario must agree across.
const THREADS: &[usize] = &[1, 8];

/// Virtual-clock period of the planted sweeps, probes per epoch.
const PERIOD: u64 = 16;

/// The production engine in the shape the differential runner injects.
fn production(
    net: &SharedNetwork,
    selected: &[SelectedBlock],
    confidence: &ConfidenceTable,
    cfg: &HobbitConfig,
    threads: usize,
) -> Vec<BlockMeasurement> {
    classify_blocks(net, selected, confidence, cfg, threads).0
}

/// Fuzzed-scenario count: `HOBBIT_DYN_CASES` or 25.
fn cases() -> usize {
    std::env::var("HOBBIT_DYN_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25)
}

/// Where shrunk reproducers of failing dynamic specs land:
/// `HOBBIT_DYN_DIR` (the CI `dynamics-conformance` job points it at its
/// artifact dir) or `target/dynamics-failures/` locally.
fn fail_dir() -> PathBuf {
    std::env::var("HOBBIT_DYN_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| Path::new(env!("CARGO_MANIFEST_DIR")).join("target/dynamics-failures"))
}

/// Delta-debug `spec` down to a minimal scenario still failing `fails`
/// and persist it as a seed file, returning the path for the message.
fn dump_shrunk(name: &str, spec: &ScenarioSpec, fails: &dyn Fn(&ScenarioSpec) -> bool) -> PathBuf {
    let min = shrink(spec, fails);
    let dir = fail_dir();
    std::fs::create_dir_all(&dir).ok();
    let path = dir.join(format!("{}.json", name.replace(' ', "_")));
    let json = serde_json::to_string_pretty(&min).expect("spec serializes");
    std::fs::write(&path, json).expect("reproducer writes");
    path
}

/// The churn-intensity axis of the accuracy sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Churn {
    /// No schedule at all — the frozen baseline.
    Zero,
    /// One route-churn event on one PoP.
    Low,
    /// One event of every class, spread over the PoPs, plus netem noise.
    High,
}

/// Plant a schedule of the given intensity onto a generated spec. Events
/// only target PoPs the spec actually has, and epochs stay in the
/// validated `1..=16` range.
fn with_churn(seed: u64, level: Churn) -> ScenarioSpec {
    let mut spec = gen_spec(seed);
    spec.dynamics = DynamicsSpec::default();
    if level == Churn::Zero {
        return spec;
    }
    spec.dynamics.period = PERIOD;
    let pops = spec.pops.len() as u8;
    let pop = |i: u8| i % pops;
    spec.dynamics.events = match level {
        Churn::Zero => unreachable!(),
        Churn::Low => vec![EventSpec::RouteChurn {
            pop: 0,
            at_epoch: 1,
        }],
        Churn::High => vec![
            EventSpec::RouteChurn {
                pop: pop(0),
                at_epoch: 1,
            },
            EventSpec::TransientLoop {
                pop: pop(1),
                at_epoch: 1,
            },
            EventSpec::AddressReuse {
                pop: pop(2),
                at_epoch: 2,
            },
            EventSpec::FalseDiamond {
                pop: pop(3),
                at_epoch: 2,
            },
            EventSpec::LbResize {
                pop: pop(4),
                at_epoch: 3,
                width: 1,
            },
        ],
    };
    if level == Churn::High {
        // Late signature changes on every PoP: blocks that resolve early
        // (small blocks finish around epoch 3-10) describe a world these
        // events have since rewritten — the staleness the harness detects.
        for p in 0..pops {
            spec.dynamics.events.push(EventSpec::AddressReuse {
                pop: p,
                at_epoch: 14,
            });
        }
    }
    if level == Churn::High {
        spec.dynamics.netem = NetemKnobs {
            delay_us: 400,
            jitter_us: 200,
            reorder_pct: 2,
            duplicate_pct: 1,
        };
    }
    spec.validate().expect("planted schedule validates");
    spec
}

#[test]
fn dynamic_corpus_entries_are_conformant_across_threads() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("golden corpus loads");
    let dynamic: Vec<_> = entries
        .iter()
        .filter(|e| !e.spec.dynamics.is_static())
        .collect();
    assert!(
        dynamic.len() >= 8,
        "dynamic corpus shrank to {} entries",
        dynamic.len()
    );
    for entry in dynamic {
        let r = run_spec(&entry.spec, THREADS, &production, None);
        assert!(r.clean(), "{}: {:?}", entry.name, r.mismatches);
        let issues = entry.check(&r);
        assert!(issues.is_empty(), "{issues:?}");
        // Live schedules must actually tag evidence with epochs.
        assert!(
            r.measurements.iter().any(|m| !m.dest_epochs.is_empty()),
            "{}: no measurement carries epoch tags",
            entry.name
        );
    }
}

#[test]
fn fuzzed_dynamic_scenarios_are_conformant() {
    let n = cases();
    for i in 0..n {
        let spec = with_churn(11_000 + i as u64, Churn::High);
        let name = format!("fuzzed-dynamic-{}", spec.seed);
        let r = run_spec(&spec, THREADS, &production, None);
        if !r.clean() {
            let fails = |s: &ScenarioSpec| !run_spec(s, &[1], &production, None).clean();
            let at = dump_shrunk(&name, &spec, &fails);
            panic!(
                "{name}: {:?} — shrunk reproducer at {}",
                r.mismatches,
                at.display()
            );
        }
    }
}

#[test]
fn empty_schedule_is_byte_identical_to_a_static_world() {
    for seed in [3001u64, 3002, 3003] {
        let mut spec = gen_spec(seed);
        spec.dynamics = DynamicsSpec::default();
        let frozen = run_spec(&spec, &[1], &production, None);
        // A period with no events (and inactive netem) must never tick the
        // clock, tag an epoch, or perturb a single byte of evidence.
        let mut armed = spec.clone();
        armed.dynamics.period = PERIOD;
        let idle = run_spec(&armed, &[1], &production, None);
        assert_eq!(
            serde_json::to_string(&frozen.measurements).unwrap(),
            serde_json::to_string(&idle.measurements).unwrap(),
            "seed {seed}: an empty schedule changed the measurement bytes"
        );
    }
}

/// One accuracy cell of the sweep, checked for thread invariance.
fn accuracy_cell(seed: u64, level: Churn, obs: Option<&AccuracyObs>) -> AccuracyReport {
    let spec = with_churn(seed, level);
    let mut per_thread: Vec<AccuracyReport> = THREADS
        .iter()
        .map(|&t| dynamics_accuracy(&spec, t, &production, obs))
        .collect();
    let first = per_thread.remove(0);
    for (t, r) in THREADS[1..].iter().zip(per_thread) {
        assert_eq!(
            first, r,
            "seed {seed} {level:?}: accuracy differs between 1 and {t} threads"
        );
    }
    first
}

#[test]
fn accuracy_sweep_reports_thread_invariant_rates_across_churn_levels() {
    let reg = Registry::new();
    let obs = AccuracyObs::bind(&reg);
    let mut totals: Vec<(Churn, usize, usize, usize)> = Vec::new();
    for level in [Churn::Zero, Churn::Low, Churn::High] {
        let (mut blocks, mut flips, mut stale) = (0usize, 0usize, 0usize);
        for seed in [5001u64, 5002, 5003] {
            let r = accuracy_cell(seed, level, Some(&obs));
            assert!(r.blocks_compared > 0, "seed {seed} {level:?}: empty world");
            if level == Churn::Zero {
                assert_eq!(r.verdict_flips, 0, "a frozen world cannot drift");
                assert_eq!(r.stale_aggregates, 0);
            }
            blocks += r.blocks_compared;
            flips += r.verdict_flips;
            stale += r.stale_aggregates;
        }
        totals.push((level, blocks, flips, stale));
    }
    for (level, blocks, flips, stale) in &totals {
        eprintln!(
            "dynamics accuracy {level:?}: blocks={blocks} flips={flips} \
             ({:.4}) stale={stale} ({:.4})",
            *flips as f64 / *blocks as f64,
            *stale as f64 / *blocks as f64,
        );
    }
    // The harness reported through the registry (three levels × three
    // seeds × both thread counts).
    assert!(reg.counter_value("accuracy.blocks_compared").unwrap() > 0);
    // High churn plants signature-changing events at future epochs, so the
    // staleness detector must fire somewhere in the sweep.
    let high = totals.iter().find(|(l, ..)| *l == Churn::High).unwrap();
    assert!(
        high.3 > 0,
        "high churn produced no stale aggregates: {totals:?}"
    );
}

#[test]
fn dynamics_dependent_failure_shrinks_to_one_event() {
    // The predicate holds iff a live schedule epoch-tagged some evidence —
    // a stand-in for any dynamics-triggered regression.
    let fails = |s: &ScenarioSpec| {
        run_spec(s, &[1], &production, None)
            .measurements
            .iter()
            .any(|m| !m.dest_epochs.is_empty())
    };
    let spec = with_churn(6001, Churn::High);
    assert!(fails(&spec), "the planted schedule must tag evidence");
    let minimal = shrink(&spec, &fails);
    assert!(fails(&minimal));
    // Everything incidental is gone: one block, a single surviving event,
    // no netem noise, no per-block churn. (The surviving event may pin one
    // extra PoP alive — pruning that PoP would drop the event with it.)
    assert_eq!(minimal.blocks.len(), 1, "{minimal:?}");
    assert!(minimal.pops.len() <= 2, "{minimal:?}");
    assert_eq!(minimal.dynamics.events.len(), 1, "{minimal:?}");
    assert!(!minimal.dynamics.netem.is_active(), "{minimal:?}");
    assert!(
        minimal
            .blocks
            .iter()
            .all(|b| b.churn_pct == 0 && b.quiet_pct == 0),
        "{minimal:?}"
    );
}
