//! End-to-end integration: the full Hobbit pipeline against ground truth.
//!
//! The paper could only argue its inferences are plausible; the simulator
//! knows the answers, so these tests hold the whole pipeline to
//! quantitative accuracy bounds.

use aggregate::{sweep_inflation, validate_cluster, ReprobeConfig};
use hobbit::{select_block, Classification};
use netsim::Block24;
use probe::Prober;
use std::collections::BTreeMap;

fn pipeline() -> experiments::Pipeline {
    experiments::Pipeline::builder()
        .seed(42)
        .scale(0.02)
        .threads(4)
        .run()
}

#[test]
fn homogeneity_verdicts_are_precise() {
    let p = pipeline();
    let mut verdicts = 0usize;
    let mut correct = 0usize;
    for m in &p.measurements {
        if m.classification.is_homogeneous() {
            verdicts += 1;
            if p.scenario.truth.is_homogeneous(m.block) {
                correct += 1;
            }
        }
    }
    assert!(verdicts > 100, "need a real sample, got {verdicts}");
    let precision = correct as f64 / verdicts as f64;
    assert!(
        precision > 0.97,
        "homogeneous verdicts only {precision:.3} precise"
    );
}

#[test]
fn heterogeneous_flags_are_precise_and_compositions_match_truth() {
    let p = pipeline();
    let mut flagged = 0usize;
    let mut correct = 0usize;
    let mut comp_checked = 0usize;
    for m in &p.measurements {
        let Some(comp) = hobbit::very_likely_heterogeneous(m) else {
            continue;
        };
        flagged += 1;
        if !p.scenario.truth.is_homogeneous(m.block) {
            correct += 1;
            if comp.tiles_fully() {
                // The observed composition must equal the allocated one.
                let truth = p.scenario.truth.composition(m.block).unwrap();
                assert_eq!(comp.lens(), truth, "block {}", m.block);
                comp_checked += 1;
            }
        }
    }
    assert!(flagged >= 10, "too few flags: {flagged}");
    assert!(
        correct as f64 / flagged as f64 > 0.9,
        "hetero flag precision {correct}/{flagged}"
    );
    assert!(comp_checked >= 3, "no compositions verified");
}

#[test]
fn aggregates_are_pure_and_recall_pops() {
    let p = pipeline();
    let aggs = p.aggregates();
    // Purity: every aggregate's blocks come from one ground-truth PoP.
    let mut impure = 0usize;
    let mut multi = 0usize;
    for agg in &aggs {
        if agg.size() < 2 {
            continue;
        }
        multi += 1;
        let pops: std::collections::BTreeSet<u32> = agg
            .blocks
            .iter()
            .filter_map(|b| p.scenario.truth.blocks.get(b))
            .map(|t| t.pop)
            .collect();
        if pops.len() > 1 {
            impure += 1;
        }
    }
    assert!(multi >= 20, "need multi-block aggregates, got {multi}");
    assert!(
        (impure as f64) / (multi as f64) < 0.02,
        "{impure}/{multi} aggregates mix PoPs"
    );
}

#[test]
fn mcl_clusters_respect_pops_and_reprobing_confirms() {
    let mut p = pipeline();
    let aggs = p.aggregates();
    let (clustering, _) = sweep_inflation(&aggs, &[1.4, 2.0]);
    // Clusters of aggregates must not mix PoPs either (similarity edges
    // only exist between same-PoP observations in this world).
    let mut mixed = 0usize;
    let mut checked = 0usize;
    for cluster in clustering.non_trivial() {
        checked += 1;
        let pops: std::collections::BTreeSet<u32> = cluster
            .iter()
            .flat_map(|&m| aggs[m as usize].blocks.iter())
            .filter_map(|b| p.scenario.truth.blocks.get(b))
            .map(|t| t.pop)
            .collect();
        if pops.len() > 1 {
            mixed += 1;
        }
    }
    assert!(checked >= 5, "need clusters, got {checked}");
    assert!(mixed <= checked / 4, "{mixed}/{checked} clusters mix PoPs");

    // Reprobing a same-PoP cluster confirms homogeneity (mostly).
    let snapshot = p.snapshot.clone();
    let cfg = ReprobeConfig {
        max_pairs_per_cluster: 20,
        seed: 5,
        ..Default::default()
    };
    let clusters: Vec<Vec<u32>> = clustering.non_trivial().take(10).cloned().collect();
    let mut prober = Prober::new(&mut p.scenario.network, 0xE2E);
    let mut confirmed = 0usize;
    let mut validated = 0usize;
    for members in &clusters {
        let v = validate_cluster(&mut prober, &aggs, members, &cfg, |b: Block24| {
            select_block(&snapshot, b).ok()
        });
        if v.total_pairs == 0 {
            continue;
        }
        validated += 1;
        if v.identical_ratio() > 0.5 {
            confirmed += 1;
        }
    }
    if validated > 0 {
        assert!(
            confirmed * 2 >= validated,
            "only {confirmed}/{validated} clusters look homogeneous on reprobe"
        );
    }
}

#[test]
fn table1_shape_tracks_the_paper() {
    let p = pipeline();
    let counts: BTreeMap<Classification, usize> = p.classification_counts().into_iter().collect();
    let total: usize = counts.values().sum();
    let pct = |c: Classification| 100.0 * counts[&c] as f64 / total as f64;

    // Shape constraints, loose versions of Table 1.
    assert!(
        pct(Classification::NonHierarchical) > pct(Classification::SameLasthop),
        "non-hierarchical should dominate same-lasthop"
    );
    assert!(
        pct(Classification::SameLasthop) > pct(Classification::Hierarchical),
        "same-lasthop should dominate hierarchical"
    );
    assert!(
        (10.0..45.0).contains(&pct(Classification::TooFewActive)),
        "too-few-active at {:.1}%",
        pct(Classification::TooFewActive)
    );
    assert!(
        (5.0..30.0).contains(&pct(Classification::UnresponsiveLasthop)),
        "unresponsive at {:.1}%",
        pct(Classification::UnresponsiveLasthop)
    );
    // The headline: ~90% of analyzable blocks are homogeneous.
    let analyzable = counts[&Classification::SameLasthop]
        + counts[&Classification::NonHierarchical]
        + counts[&Classification::Hierarchical];
    let homog = counts[&Classification::SameLasthop] + counts[&Classification::NonHierarchical];
    let share = homog as f64 / analyzable as f64;
    assert!(
        (0.80..=0.97).contains(&share),
        "homogeneous share {share:.3}"
    );
}

#[test]
fn probing_cost_is_modest() {
    // Hobbit's selling point: classification costs a handful of probes per
    // destination, far below full per-TTL traceroutes.
    let p = pipeline();
    let dests: usize = p.measurements.iter().map(|m| m.dests_probed).sum();
    let per_dest = p.classify_probes as f64 / dests.max(1) as f64;
    assert!(
        per_dest < 25.0,
        "classification used {per_dest:.1} probes per destination"
    );
}
