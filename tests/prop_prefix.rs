//! Property tests for the address/prefix algebra — the foundation every
//! other invariant rests on.

use netsim::build::{run_to_prefixes, tile_composition, HETERO_COMPOSITIONS};
use netsim::{Addr, Block24, Prefix};
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Addr> {
    any::<u32>().prop_map(Addr)
}

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(base, len)| Prefix::new(Addr(base), len))
}

proptest! {
    #[test]
    fn display_parse_roundtrip(a in arb_addr()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Addr>().unwrap(), a);
    }

    #[test]
    fn prefix_display_parse_roundtrip(p in arb_prefix()) {
        let s = p.to_string();
        prop_assert_eq!(s.parse::<Prefix>().unwrap(), p);
    }

    #[test]
    fn prefix_contains_its_bounds(p in arb_prefix()) {
        prop_assert!(p.contains(p.first()));
        prop_assert!(p.contains(p.last()));
        prop_assert!(p.first() <= p.last());
    }

    #[test]
    fn contains_iff_in_range(p in arb_prefix(), a in arb_addr()) {
        let in_range = p.first() <= a && a <= p.last();
        prop_assert_eq!(p.contains(a), in_range);
    }

    #[test]
    fn split_children_partition_parent(p in arb_prefix()) {
        if let Some((lo, hi)) = p.split() {
            prop_assert!(p.contains_prefix(lo));
            prop_assert!(p.contains_prefix(hi));
            prop_assert!(!lo.overlaps(hi));
            // Prefix::size saturates at u32::MAX for /0; widen manually.
            let true_size: u64 = if p.len() == 0 { 1 << 32 } else { p.size() as u64 };
            prop_assert_eq!(lo.size() as u64 + hi.size() as u64, true_size);
            prop_assert_eq!(lo.parent(), Some(p));
            prop_assert_eq!(hi.parent(), Some(p));
        }
    }

    #[test]
    fn join_is_smallest_common_container(a in arb_prefix(), b in arb_prefix()) {
        let j = a.join(b);
        prop_assert!(j.contains_prefix(a));
        prop_assert!(j.contains_prefix(b));
        // No longer prefix could contain both.
        if let Some((lo, hi)) = j.split() {
            let lo_both = lo.contains_prefix(a) && lo.contains_prefix(b);
            let hi_both = hi.contains_prefix(a) && hi.contains_prefix(b);
            prop_assert!(!lo_both && !hi_both);
        }
    }

    #[test]
    fn overlap_iff_one_contains_other(a in arb_prefix(), b in arb_prefix()) {
        // CIDR prefixes can never partially overlap — this is the
        // route-entry hierarchy at the heart of the paper.
        let overlap = a.overlaps(b);
        let nested = a.contains_prefix(b) || b.contains_prefix(a);
        prop_assert_eq!(overlap, nested);
        // And overlap matches range intersection.
        let range_overlap = a.first() <= b.last() && b.first() <= a.last();
        prop_assert_eq!(overlap, range_overlap);
    }

    #[test]
    fn covering_contains_all(addrs in proptest::collection::vec(arb_addr(), 1..20)) {
        let p = Prefix::covering(&addrs).unwrap();
        for a in &addrs {
            prop_assert!(p.contains(*a));
        }
        // Minimality: the two halves cannot each contain everything.
        if let Some((lo, hi)) = p.split() {
            let all_lo = addrs.iter().all(|&a| lo.contains(a));
            let all_hi = addrs.iter().all(|&a| hi.contains(a));
            prop_assert!(!all_lo && !all_hi);
        }
    }

    #[test]
    fn lcp_len_symmetric_and_bounded(a in arb_addr(), b in arb_addr()) {
        prop_assert_eq!(a.lcp_len(b), b.lcp_len(a));
        prop_assert!(a.lcp_len(b) <= 32);
        if a == b {
            prop_assert_eq!(a.lcp_len(b), 32);
        }
    }

    #[test]
    fn block24_lcp_matches_prefix_join(x in any::<u32>(), y in any::<u32>()) {
        let (bx, by) = (Block24(x & 0xFF_FFFF), Block24(y & 0xFF_FFFF));
        let lcp = bx.lcp_len(by);
        if bx != by {
            let j = bx.prefix().join(by.prefix());
            prop_assert_eq!(lcp, j.len());
        } else {
            prop_assert_eq!(lcp, 24);
        }
    }

    #[test]
    fn run_decomposition_covers_exactly(start in 0u32..0xFF_F000, len in 1u32..512) {
        let len = len.min(0xFF_FFFF - start);
        let prefixes = run_to_prefixes(Block24(start), len);
        let mut blocks: Vec<u32> = prefixes
            .iter()
            .flat_map(|p| p.blocks24().map(|b| b.0))
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        let expect: Vec<u32> = (start..start + len).collect();
        prop_assert_eq!(blocks, expect);
        // Pairwise disjoint.
        for i in 0..prefixes.len() {
            for j in 0..i {
                prop_assert!(!prefixes[i].overlaps(prefixes[j]));
            }
        }
    }

    #[test]
    fn compositions_tile_any_block(idx in 0usize..HETERO_COMPOSITIONS.len(), blk in 0u32..0xFF_FFFF) {
        let (lens, _) = HETERO_COMPOSITIONS[idx];
        let subs = tile_composition(Block24(blk), lens);
        let total: u64 = subs.iter().map(|p| p.size() as u64).sum();
        prop_assert_eq!(total, 256);
        for s in &subs {
            prop_assert!(Block24(blk).prefix().contains_prefix(*s));
        }
        for i in 0..subs.len() {
            for j in 0..i {
                prop_assert!(!subs[i].overlaps(subs[j]));
            }
        }
    }
}
