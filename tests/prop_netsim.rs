//! Property tests for the simulator substrate: LPM trie correctness, wire
//! roundtrips, and forwarding invariants.

use netsim::addr::{Addr, Prefix};
use netsim::build::{build, ScenarioConfig};
use netsim::forward::encode_probe;
use netsim::route::{NextHop, NextHopGroup, RouteTable, RouterId};
use netsim::wire::{IcmpEcho, Ipv4Header, ICMP_ECHO_REQUEST};
use proptest::prelude::*;

fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(base, len)| Prefix::new(Addr(base), len))
}

proptest! {
    /// The binary trie agrees with a brute-force linear scan on random
    /// tables: longest-prefix-match is exact.
    #[test]
    fn trie_matches_linear_scan(
        entries in proptest::collection::vec(arb_prefix(), 1..40),
        lookups in proptest::collection::vec(any::<u32>(), 1..40),
    ) {
        let mut table = RouteTable::new();
        for (i, p) in entries.iter().enumerate() {
            table.insert(*p, NextHopGroup::single(NextHop::Router(RouterId(i as u32))));
        }
        for dst in lookups {
            let a = Addr(dst);
            let fast = table.lookup(a).map(|(p, g)| (p, g.hops()[0]));
            let slow = table.lookup_linear(a).map(|(p, g)| (p, g.hops()[0]));
            // Both must agree on the matched prefix *length* (two inserted
            // prefixes with equal base/len replace each other).
            prop_assert_eq!(fast.map(|(p, _)| p), slow.map(|(p, _)| p));
            prop_assert_eq!(fast.map(|(_, h)| h), slow.map(|(_, h)| h));
        }
    }

    /// IPv4 header encode/decode is the identity.
    #[test]
    fn ipv4_header_roundtrip(src in any::<u32>(), dst in any::<u32>(), ttl in any::<u8>(), ident in any::<u16>()) {
        let h = Ipv4Header { src: Addr(src), dst: Addr(dst), ttl, protocol: 1, ident };
        let mut buf = bytes::BytesMut::new();
        h.encode(&mut buf);
        let parsed = Ipv4Header::decode(&mut buf.freeze()).unwrap();
        prop_assert_eq!(parsed, h);
    }

    /// Any target checksum except 0xffff is exactly constructible — the
    /// Paris flow-label trick never misses.
    #[test]
    fn checksum_targeting(ident in any::<u16>(), seq in any::<u16>(), target in 0u16..0xffff) {
        let echo = IcmpEcho::with_checksum(ident, seq, target);
        prop_assert_eq!(echo.wire_checksum(ICMP_ECHO_REQUEST), target);
    }

    /// Corrupting any single byte of an encoded header is detected.
    #[test]
    fn corruption_detected(flip_at in 0usize..20, flip_bits in 1u8..=255) {
        let h = Ipv4Header {
            src: Addr(0x0A000001),
            dst: Addr(0xC0000201),
            ttl: 9,
            protocol: 1,
            ident: 7,
        };
        let mut buf = bytes::BytesMut::new();
        h.encode(&mut buf);
        buf[flip_at] ^= flip_bits;
        let r = Ipv4Header::decode(&mut buf.freeze());
        // Either rejected outright, or (if the flip hit the checksum's own
        // complement representation) never silently yields a different header.
        if let Ok(parsed) = r {
            prop_assert_eq!(parsed, h);
        }
    }
}

/// Sample budget for the hand-rolled sweeps below, derived from
/// [`proptest::cases`] so `PROPTEST_CASES` governs every test in this
/// file — the macro-generated ones and these — uniformly.
fn sweep_budget(divisor: usize, floor: usize) -> usize {
    proptest::cases().div_ceil(divisor).max(floor)
}

/// Forwarding invariants on a built scenario (fixed seed, sampled dests).
#[test]
fn echo_reachability_is_ttl_monotone() {
    let s = build(ScenarioConfig::tiny(5));
    let vantage = s.network.vantage_addr();
    let blocks = s.network.allocated_blocks();
    let samples = sweep_budget(4, 6);
    // Spread the samples across the whole allocation rather than probing a
    // contiguous run of blocks.
    let step = (blocks.len() / samples).max(1);
    let mut checked = 0;
    for b in blocks.iter().step_by(step).take(samples) {
        let profile = *s.network.block_profile(*b).unwrap();
        let actives = s
            .network
            .oracle()
            .active_in_block(*b, &profile, s.network.epoch());
        let Some(&dst) = actives.first() else {
            continue;
        };
        // Find the minimal TTL that gets an echo; all larger TTLs must too
        // (the scenario uses no per-packet balancing).
        let mut first_echo = None;
        for ttl in 1..=20u8 {
            let probe = encode_probe(vantage, dst, ttl, 1, ttl as u16, 0x1234, 0);
            let d = s.network.send(probe).unwrap();
            let echoed = d
                .response
                .as_ref()
                .map(|r| {
                    let mut buf = r.clone();
                    let h = Ipv4Header::decode(&mut buf).unwrap();
                    h.src == dst
                })
                .unwrap_or(false);
            match (first_echo, echoed) {
                (None, true) => first_echo = Some(ttl),
                (Some(_), false) => panic!("echo at lower TTL but not at {ttl} for {dst}"),
                _ => {}
            }
        }
        assert!(first_echo.is_some(), "{dst} unreachable at any TTL");
        checked += 1;
    }
    // Sparse blocks may skip; at least half the sample must have resolved.
    assert!(
        checked >= samples.div_ceil(2),
        "too few destinations checked: {checked}/{samples}"
    );
}

/// The same probe (all fields equal) always gets the same answer.
#[test]
fn probing_is_deterministic() {
    let s1 = build(ScenarioConfig::tiny(9));
    let s2 = build(ScenarioConfig::tiny(9));
    let vantage = s1.network.vantage_addr();
    for b in s1
        .network
        .allocated_blocks()
        .iter()
        .take(sweep_budget(1, 8))
    {
        let dst = b.addr(33);
        let p = encode_probe(vantage, dst, 12, 3, 1, 0xBEEF, 5);
        let d1 = s1.network.send(p.clone()).unwrap();
        let d2 = s2.network.send(p).unwrap();
        assert_eq!(d1.response, d2.response);
        assert_eq!(d1.rtt_us, d2.rtt_us);
    }
}
