//! Multi-process shard conformance sweep: a run partitioned over N worker
//! processes — including runs where workers are killed mid-journal, wedge
//! past their heartbeat timeout, or the coordinator itself dies — must
//! merge into a `hobbit-report/v1` byte-identical to a single-process run
//! with the same seed/scale. The worker binary is the real `hobbit-shard`
//! executable, re-entered with `--shard` exactly as in production.

use experiments::coordinator::{
    run_sharded, CoordCrash, CoordError, CoordinatorConfig, LOCK_FILE, REPORT_FILE,
};
use experiments::lease::{shard_dir, LeaseSabotage};
use experiments::Pipeline;
use obs::{NullRecorder, Registry};
use std::path::PathBuf;
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;
use testkit::{first_divergence, kill_points, CrashPlan};

const SEED: u64 = 4242;
const SCALE: f64 = 0.01;

/// The worker executable cargo built alongside this test.
fn worker_exe() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_hobbit_shard"))
}

/// The single-process truth, computed once: the canonical report every
/// sharded variant must reproduce byte-for-byte, plus the selected-block
/// count the kill sweep derives its crash points from.
struct Baseline {
    report: String,
    selected: usize,
}

fn baseline() -> &'static Baseline {
    static CELL: OnceLock<Baseline> = OnceLock::new();
    CELL.get_or_init(|| {
        let p = Pipeline::builder().seed(SEED).scale(SCALE).threads(2).run();
        Baseline {
            report: p.canonical_report(),
            selected: p.selected.len(),
        }
    })
}

/// Run dirs live under `HOBBIT_RESUME_DIR` (CI points this at a workspace
/// path so diverging run-dirs survive as artifacts) or the system temp
/// dir. Passing tests remove their dirs; a failing test leaves everything
/// — leases, shard journals, heartbeats — behind for post-mortem.
fn run_dir(tag: &str) -> PathBuf {
    let base = std::env::var_os("HOBBIT_RESUME_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    let d = base.join(format!("hobbit-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn config(dir: &PathBuf, shards: usize, threads: usize) -> CoordinatorConfig {
    let mut cfg = CoordinatorConfig::new(dir, shards);
    cfg.seed = SEED;
    cfg.scale = SCALE;
    cfg.threads = threads;
    cfg.worker_exe = Some(worker_exe());
    cfg
}

fn assert_identical(got: &str, what: &str) {
    if let Some((pos, ctx)) = first_divergence(&baseline().report, got) {
        panic!("{what}: merged report diverges from single-process at {pos}: {ctx}");
    }
}

#[test]
fn clean_sharded_runs_merge_byte_identical_to_single_process() {
    for (shards, threads) in [(2, 1), (2, 8), (4, 1), (4, 8)] {
        let tag = format!("clean-s{shards}-t{threads}");
        let dir = run_dir(&tag);
        let reg = Registry::new();
        let report = run_sharded(&config(&dir, shards, threads), &reg).unwrap();
        assert_identical(&report, &tag);
        // The on-disk report is the same bytes the call returned.
        let on_disk = std::fs::read_to_string(dir.join(REPORT_FILE)).unwrap();
        assert_eq!(on_disk, report, "{tag}");
        // Coordinator accounting: one spawn per shard, no failures, and
        // the lock released.
        assert_eq!(reg.counter_value("coord.shards"), Some(shards as u64));
        assert_eq!(reg.counter_value("coord.spawns"), Some(shards as u64));
        assert_eq!(reg.counter_value("coord.revocations"), Some(0));
        assert_eq!(reg.counter_value("coord.shards_done"), Some(shards as u64));
        assert_eq!(reg.counter_value("coord.merges"), Some(1));
        assert!(!dir.join(LOCK_FILE).exists(), "{tag}: lock left behind");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The tentpole acceptance sweep: kill worker 1 of 2 at every crash point
/// of its own journal (torn and clean tails alternating), at worker thread
/// counts 1 and 8. Each kill must be revoked, the lease reassigned, the
/// respawned incarnation must resume from the shard journal, and the final
/// merge must stay byte-identical.
#[test]
fn killed_worker_is_reassigned_and_merge_stays_byte_identical() {
    // Shard 1 of 2 owns every odd selection index — about half the blocks.
    let owned = (baseline().selected / 2) as u64;
    for (i, &kp) in kill_points(owned).iter().enumerate() {
        let torn = i % 2 == 1;
        for &threads in &[1usize, 8] {
            let plan = CrashPlan::KillWorker {
                shard: 1,
                appends: kp,
                torn,
            };
            let tag = format!("kill-k{kp}-torn{torn}-t{threads}");
            let dir = run_dir(&tag);
            let mut cfg = config(&dir, 2, threads);
            let CrashPlan::KillWorker {
                shard,
                appends,
                torn,
            } = plan
            else {
                unreachable!()
            };
            cfg.sabotage = vec![(shard, LeaseSabotage::CrashAfter { appends, torn })];
            let reg = Registry::new();
            let report = run_sharded(&cfg, &reg).unwrap();
            assert_identical(&report, &tag);
            assert_eq!(
                reg.counter_value("coord.worker_crashes"),
                Some(1),
                "{tag}: the armed kill must fire exactly once"
            );
            assert_eq!(reg.counter_value("coord.revocations"), Some(1), "{tag}");
            assert_eq!(reg.counter_value("coord.respawns"), Some(1), "{tag}");
            assert_eq!(reg.counter_value("coord.spawns"), Some(3), "{tag}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

#[test]
fn both_workers_killed_in_one_run_still_merge_identically() {
    let owned = (baseline().selected / 2) as u64;
    let dir = run_dir("kill-both");
    let mut cfg = config(&dir, 2, 2);
    cfg.sabotage = vec![
        (
            0,
            LeaseSabotage::CrashAfter {
                appends: owned / 3,
                torn: true,
            },
        ),
        (
            1,
            LeaseSabotage::CrashAfter {
                appends: owned / 2,
                torn: false,
            },
        ),
    ];
    let reg = Registry::new();
    let report = run_sharded(&cfg, &reg).unwrap();
    assert_identical(&report, "kill-both");
    assert_eq!(reg.counter_value("coord.worker_crashes"), Some(2));
    assert_eq!(reg.counter_value("coord.respawns"), Some(2));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The missed-heartbeat path: a wedged worker never exits on its own, so
/// the coordinator must notice the stale mtime, kill the incarnation,
/// and reassign the lease.
#[test]
fn stalled_worker_is_revoked_by_heartbeat_and_reassigned() {
    let plan = CrashPlan::StallWorker { shard: 0 };
    let CrashPlan::StallWorker { shard } = plan else {
        unreachable!()
    };
    let dir = run_dir("stall");
    let mut cfg = config(&dir, 2, 2);
    cfg.sabotage = vec![(shard, LeaseSabotage::Stall)];
    cfg.heartbeat_timeout = Duration::from_millis(600);
    let reg = Registry::new();
    let report = run_sharded(&cfg, &reg).unwrap();
    assert_identical(&report, "stall");
    assert_eq!(reg.counter_value("coord.stale_heartbeats"), Some(1));
    assert_eq!(reg.counter_value("coord.revocations"), Some(1));
    assert_eq!(reg.counter_value("coord.respawns"), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Coordinator kills at both quiescent points: before any worker spawned,
/// and after every worker finished but before the merge. Re-running the
/// same coordinator command must complete the run either way.
#[test]
fn killed_coordinator_resumes_to_an_identical_report() {
    for plan in [
        CrashPlan::KillCoordinator {
            before_merge: false,
        },
        CrashPlan::KillCoordinator { before_merge: true },
    ] {
        let CrashPlan::KillCoordinator { before_merge } = plan else {
            unreachable!()
        };
        let crash = if before_merge {
            CoordCrash::BeforeMerge
        } else {
            CoordCrash::BeforeSpawn
        };
        let tag = format!("coord-kill-{crash:?}");
        let dir = run_dir(&tag);
        let mut cfg = config(&dir, 2, 2);
        cfg.crash = Some(crash);
        match run_sharded(&cfg, &NullRecorder) {
            Err(CoordError::SimulatedCrash(cp)) => assert_eq!(cp, crash),
            other => panic!("{tag}: expected the simulated crash, got {other:?}"),
        }
        // Re-run the identical command, minus the armed crash.
        cfg.crash = None;
        let reg = Registry::new();
        let report = run_sharded(&cfg, &reg).unwrap();
        assert_identical(&report, &tag);
        if before_merge {
            // Every shard had finished: the resumed coordinator must go
            // straight to the merge without spawning anything.
            assert_eq!(reg.counter_value("coord.spawns"), Some(0), "{tag}");
            assert_eq!(reg.counter_value("coord.shards_done"), Some(2), "{tag}");
        } else {
            assert_eq!(reg.counter_value("coord.spawns"), Some(2), "{tag}");
        }
        assert_eq!(reg.counter_value("coord.merges"), Some(1), "{tag}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A coordinator kill *combined* with a worker kill in the completed half:
/// the resumed coordinator must leave the finished shard alone and only
/// re-drive the unfinished one.
#[test]
fn coordinator_kill_before_spawn_then_worker_kill_on_resume() {
    let owned = (baseline().selected / 2) as u64;
    let dir = run_dir("coord-then-worker");
    let mut cfg = config(&dir, 2, 2);
    cfg.crash = Some(CoordCrash::BeforeSpawn);
    assert!(matches!(
        run_sharded(&cfg, &NullRecorder),
        Err(CoordError::SimulatedCrash(CoordCrash::BeforeSpawn))
    ));
    cfg.crash = None;
    cfg.sabotage = vec![(
        1,
        LeaseSabotage::CrashAfter {
            appends: owned / 2,
            torn: true,
        },
    )];
    let reg = Registry::new();
    let report = run_sharded(&cfg, &reg).unwrap();
    assert_identical(&report, "coord-then-worker");
    assert_eq!(reg.counter_value("coord.respawns"), Some(1));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// CLI contract (bugfix satellite): conflicting or underspecified shard
/// flags must fail up front with a clear message — before any run dir is
/// created — and a worker pointed at a dir with no lease must refuse.
#[test]
fn shard_cli_conflicts_fail_clearly_and_touch_nothing() {
    let ghost = run_dir("cli-ghost");
    let cases: &[(&[&str], &str)] = &[
        (
            &["--shards", "2", "--shard", "1", "--run-dir", "X"],
            "mutually exclusive",
        ),
        (&["--shards", "2"], "requires --run-dir"),
        (&["--shard", "0"], "requires --run-dir"),
        (
            &["--shards", "2", "--resume", "--run-dir", "X"],
            "re-run the coordinator",
        ),
        (
            &["--shard", "0", "--resume", "--run-dir", "X"],
            "resumes its own shard journal",
        ),
        (&["--shards", "0", "--run-dir", "X"], "at least 1"),
    ];
    for (args, needle) in cases {
        let args: Vec<String> = args
            .iter()
            .map(|a| {
                if *a == "X" {
                    ghost.display().to_string()
                } else {
                    a.to_string()
                }
            })
            .collect();
        let out = Command::new(worker_exe()).args(&args).output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(2),
            "{args:?}: wrong exit code; stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: stderr was {stderr:?}");
        assert!(
            !ghost.exists(),
            "{args:?}: a rejected command created the run dir"
        );
    }

    // A worker spawned against a dir with no lease refuses (exit 3), it
    // does not limp into a fresh single-process run.
    let empty = run_dir("cli-no-lease");
    std::fs::create_dir_all(&empty).unwrap();
    let out = Command::new(worker_exe())
        .args(["--shard", "0", "--run-dir", &empty.display().to_string()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "lease-less worker must refuse");
    assert!(
        !shard_dir(&empty, 0).join("journal.wal").exists(),
        "a refused worker must not have started journaling"
    );
    std::fs::remove_dir_all(&empty).unwrap();
}
