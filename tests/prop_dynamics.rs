//! Property tests for the time-evolving dynamics layer: the derived
//! schedule is a pure function of `(seed, rate, period)` and monotone in
//! the rate, a dynamic world classifies thread-invariantly in both MDA
//! modes, partitioning a dynamic run over shards never changes a
//! measurement byte (the virtual clock is per-stream, not global), and an
//! armed-but-empty schedule is byte-invisible.

use experiments::classify_blocks;
use experiments::lease::shard_of;
use hobbit::{select_all, BlockMeasurement, ConfidenceTable, SelectedBlock};
use netsim::build::{build, derive_dynamics, ScenarioConfig};
use netsim::SharedNetwork;
use probe::{zmap, MdaMode};
use proptest::prelude::*;
use testkit::diff::{conform_config, run_spec};
use testkit::scenario::{build_world, gen_spec, DynamicsSpec, EventSpec, NetemKnobs, ScenarioSpec};

/// The production engine in the shape the differential runner injects.
fn production(
    net: &SharedNetwork,
    selected: &[SelectedBlock],
    confidence: &ConfidenceTable,
    cfg: &hobbit::HobbitConfig,
    threads: usize,
) -> Vec<BlockMeasurement> {
    classify_blocks(net, selected, confidence, cfg, threads).0
}

/// A generated spec with a live schedule planted on it: one route churn at
/// epoch 1, one address-reuse at epoch 2, and (on odd seeds) mild netem
/// noise — enough evolution to exercise every clock path without
/// hand-picking a scenario shape.
fn dynamic_spec(seed: u64) -> ScenarioSpec {
    let mut spec = gen_spec(seed);
    spec.dynamics = DynamicsSpec::default();
    spec.dynamics.period = 16;
    let last = (spec.pops.len() - 1) as u8;
    spec.dynamics.events = vec![
        EventSpec::RouteChurn {
            pop: 0,
            at_epoch: 1,
        },
        EventSpec::AddressReuse {
            pop: last,
            at_epoch: 2,
        },
    ];
    if seed % 2 == 1 {
        spec.dynamics.netem = NetemKnobs {
            delay_us: 300,
            jitter_us: 150,
            reorder_pct: 1,
            duplicate_pct: 1,
        };
    }
    spec.validate().expect("planted schedule validates");
    spec
}

/// Build, snapshot, arm faults + dynamics, classify `subset` — the same
/// sequence a shard worker runs, with a fresh world per call so no probing
/// state leaks between partitions.
fn classify_subset(
    spec: &ScenarioSpec,
    subset: &[SelectedBlock],
    threads: usize,
) -> Vec<BlockMeasurement> {
    let mut world = build_world(spec);
    let _snapshot = zmap::scan_all(&mut world.network);
    world.network.set_faults(spec.faults());
    if world.dynamics.is_active() {
        world.network.set_dynamics(world.dynamics.clone());
    }
    let cfg = conform_config(spec);
    let shared = SharedNetwork::new(world.network);
    classify_blocks(&shared, subset, &ConfidenceTable::empty(), &cfg, threads).0
}

/// The selection a full run and every shard agree on (selection reads the
/// epoch-0 snapshot, before the schedule arms).
fn selection_of(spec: &ScenarioSpec) -> Vec<SelectedBlock> {
    let mut world = build_world(spec);
    let snapshot = zmap::scan_all(&mut world.network);
    select_all(&snapshot)
}

proptest! {
    /// `derive_dynamics` is a pure function of `(seed, rate, period)`:
    /// re-building the scenario and re-deriving yields the identical
    /// schedule (this is what lets `--resume` and every shard replay the
    /// world evolution from three numbers in the journal). The per-PoP
    /// draws are rate-monotone — a higher rate perturbs a superset of the
    /// PoPs with the same events — and a zero rate or period derives
    /// nothing at all.
    #[test]
    fn derived_schedule_is_pure_and_rate_monotone(
        seed in 0u64..100_000,
        r1 in 0.05f64..1.0,
        r2 in 0.05f64..1.0,
        pexp in 3u32..8,
    ) {
        let period = 1u64 << pexp;
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let a = derive_dynamics(&build(ScenarioConfig::tiny(seed)), hi, period);
        let b = derive_dynamics(&build(ScenarioConfig::tiny(seed)), hi, period);
        prop_assert_eq!(&a, &b, "seed {} rate {} period {}", seed, hi, period);
        prop_assert_eq!(a.period, period);
        for e in &a.events {
            let epoch = e.at_epoch();
            prop_assert!(
                (1..=4).contains(&epoch),
                "seed {seed}: derived event at epoch {epoch}"
            );
        }
        let sparse = derive_dynamics(&build(ScenarioConfig::tiny(seed)), lo, period);
        for e in &sparse.events {
            prop_assert!(
                a.events.contains(e),
                "seed {seed}: rate {lo} scheduled {e:?} but rate {hi} did not"
            );
        }
        let zero_rate = derive_dynamics(&build(ScenarioConfig::tiny(seed)), 0.0, period);
        prop_assert!(zero_rate.events.is_empty());
        let zero_period = derive_dynamics(&build(ScenarioConfig::tiny(seed)), hi, 0);
        prop_assert!(zero_period.events.is_empty());
    }

    /// A dynamic world stays oracle-clean and byte-identical across thread
    /// counts under *both* probing modes — MDA-Lite's shortcut paths pull
    /// the same per-stream virtual clock, so forcing the mode must never
    /// introduce a thread-ordering dependence, and the live schedule must
    /// tag evidence with epochs either way.
    #[test]
    fn dynamic_worlds_are_thread_invariant_in_both_mda_modes(seed in 0u64..50_000) {
        for mode in [MdaMode::Classic, MdaMode::Lite] {
            let mut spec = dynamic_spec(seed);
            spec.mda_mode = mode;
            let r = run_spec(&spec, &[1, 8], &production, None);
            prop_assert!(
                r.clean(),
                "seed {} {:?}: {:?}",
                seed,
                mode,
                r.mismatches
            );
            // Epoch tags ride on resolved destinations; a world where no
            // last hop resolves legitimately records none.
            if r.measurements.iter().any(|m| m.dests_resolved > 0) {
                prop_assert!(
                    r.measurements.iter().any(|m| !m.dest_epochs.is_empty()),
                    "seed {seed} {mode:?}: live schedule tagged no evidence"
                );
            }
        }
    }

    /// Partitioning a dynamic run over shards is invisible in the
    /// measurement bytes: the virtual clock ticks per probe stream (ICMP
    /// ident × destination block), so which worker probes a block — and
    /// alongside which other blocks — cannot move any block's epochs.
    #[test]
    fn shard_partition_never_changes_dynamic_measurement_bytes(
        seed in 0u64..50_000,
        shards in 2usize..5,
    ) {
        let spec = dynamic_spec(seed);
        let selected = selection_of(&spec);
        if selected.is_empty() {
            // All planted blocks below the selection bar — nothing to shard.
            continue;
        }
        let full = classify_subset(&spec, &selected, 1);
        let mut slots: Vec<Option<BlockMeasurement>> =
            (0..selected.len()).map(|_| None).collect();
        for s in 0..shards {
            let idx: Vec<usize> = (0..selected.len())
                .filter(|&i| shard_of(i, shards) == s)
                .collect();
            let subset: Vec<SelectedBlock> =
                idx.iter().map(|&i| selected[i].clone()).collect();
            let ms = classify_subset(&spec, &subset, 2);
            prop_assert_eq!(ms.len(), idx.len());
            for (i, m) in idx.into_iter().zip(ms) {
                slots[i] = Some(m);
            }
        }
        let merged: Vec<BlockMeasurement> =
            slots.into_iter().map(|m| m.expect("every slot classified")).collect();
        prop_assert_eq!(
            serde_json::to_string(&full).unwrap(),
            serde_json::to_string(&merged).unwrap(),
            "seed {} over {} shards", seed, shards
        );
    }

    /// Arming the clock without scheduling anything is byte-invisible: a
    /// period with no events (and inactive netem) never ticks, never tags
    /// an epoch, and never perturbs a measurement — the guarantee that
    /// keeps every pre-dynamics report reproducible to the byte.
    #[test]
    fn an_armed_but_empty_schedule_is_byte_invisible(
        seed in 0u64..100_000,
        pexp in 3u32..8,
    ) {
        let mut spec = gen_spec(seed);
        spec.dynamics = DynamicsSpec::default();
        let frozen = run_spec(&spec, &[1], &production, None);
        let mut armed = spec.clone();
        armed.dynamics.period = 1u64 << pexp;
        let idle = run_spec(&armed, &[1], &production, None);
        prop_assert_eq!(
            serde_json::to_string(&frozen.measurements).unwrap(),
            serde_json::to_string(&idle.measurements).unwrap(),
            "seed {}: an empty schedule changed the measurement bytes", seed
        );
    }
}
