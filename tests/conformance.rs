//! Differential conformance sweep: the production work-stealing engine
//! must agree with the `testkit` reference oracle — byte-identically
//! across thread counts {1, 8} and under injected faults {0, 0.02} — on
//! the golden corpus and on hundreds of fresh generated scenarios, and an
//! injected divergence must shrink to a minimal persisted seed file.

use experiments::classify_blocks;
use hobbit::{BlockMeasurement, Classification, ConfidenceTable, HobbitConfig, SelectedBlock};
use netsim::SharedNetwork;
use std::path::Path;
use testkit::corpus::load_dir;
use testkit::diff::{run_spec, ConformObs};
use testkit::scenario::{gen_spec, ScenarioSpec};
use testkit::shrink::shrink;

/// Thread counts every scenario must agree across.
const THREADS: &[usize] = &[1, 8];

/// The loss axis of the sweep.
const FAULT_LOSSES: &[f32] = &[0.0, 0.02];

/// The production engine in the shape the differential runner injects.
fn production(
    net: &SharedNetwork,
    selected: &[SelectedBlock],
    confidence: &ConfidenceTable,
    cfg: &HobbitConfig,
    threads: usize,
) -> Vec<BlockMeasurement> {
    classify_blocks(net, selected, confidence, cfg, threads).0
}

/// Fresh-scenario count: `HOBBIT_CONFORM_CASES` or 200.
fn cases() -> usize {
    std::env::var("HOBBIT_CONFORM_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200)
}

#[test]
fn golden_corpus_is_conformant_across_threads_and_faults() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let entries = load_dir(&dir).expect("golden corpus loads");
    assert!(
        entries.len() >= 20,
        "golden corpus shrank to {} entries",
        entries.len()
    );
    for entry in &entries {
        // The entry's own fault knobs (checked against the pins), plus the
        // sweep's loss axis.
        let r = run_spec(&entry.spec, THREADS, &production, None);
        assert!(r.clean(), "{}: {:?}", entry.name, r.mismatches);
        let issues = entry.check(&r);
        assert!(issues.is_empty(), "{issues:?}");
        for &loss in FAULT_LOSSES {
            let spec = entry.spec.with_faults(loss, 0.0);
            if spec == entry.spec {
                continue;
            }
            let r = run_spec(&spec, THREADS, &production, None);
            assert!(
                r.clean(),
                "{} at loss {loss}: {:?}",
                entry.name,
                r.mismatches
            );
        }
    }
}

#[test]
fn fresh_scenarios_are_conformant() {
    let reg = obs::Registry::new();
    let conform_obs = ConformObs::bind(&reg);
    let n = cases();
    for i in 0..n {
        let mut spec = gen_spec(7000 + i as u64);
        // Alternate the loss axis so both fault levels get half the sweep.
        if i % 2 == 1 {
            spec = spec.with_faults(FAULT_LOSSES[1], 0.0);
        }
        let r = run_spec(&spec, THREADS, &production, Some(&conform_obs));
        assert!(r.clean(), "seed {}: {:?}", spec.seed, r.mismatches);
    }
    assert_eq!(reg.counter_value("conform.scenarios"), Some(n as u64));
    assert_eq!(reg.counter_value("conform.mismatches"), Some(0));
    assert!(reg.counter_value("conform.blocks").unwrap() > 0);
}

#[test]
fn injected_mismatch_shrinks_to_minimal_seed_file() {
    // A broken engine that misreports single-last-hop blocks.
    let broken = |net: &SharedNetwork,
                  sel: &[SelectedBlock],
                  table: &ConfidenceTable,
                  cfg: &HobbitConfig,
                  t: usize| {
        let mut ms = production(net, sel, table, cfg, t);
        for m in &mut ms {
            if m.classification == Classification::SameLasthop {
                m.classification = Classification::Hierarchical;
            }
        }
        ms
    };
    let fails = |s: &ScenarioSpec| !run_spec(s, &[1], &broken, None).clean();
    // Find a generated scenario the broken engine diverges on.
    let spec = (0..50u64)
        .map(|s| gen_spec(9000 + s).with_faults(0.02, 0.0))
        .find(|s| fails(s))
        .expect("some generated scenario has a SameLasthop block");
    let minimal = shrink(&spec, &fails);
    // Minimal reproducer: everything incidental is gone.
    assert!(fails(&minimal));
    assert_eq!(minimal.blocks.len(), 1, "{minimal:?}");
    assert!(minimal.pops.len() <= 1, "{minimal:?}");
    assert!(!minimal.transit, "{minimal:?}");
    assert_eq!(minimal.link_loss, 0.0, "{minimal:?}");
    assert_eq!(minimal.blocks[0].density_pct, 100, "{minimal:?}");
    // The seed file round-trips and still reproduces.
    let dir = std::env::temp_dir().join(format!("conform-shrink-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("minimal.json");
    std::fs::write(&path, serde_json::to_string_pretty(&minimal).unwrap()).unwrap();
    let back: ScenarioSpec =
        serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(back, minimal);
    assert!(fails(&back));
    std::fs::remove_dir_all(&dir).unwrap();
}
