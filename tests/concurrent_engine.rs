//! Workspace tests for the shared concurrent network engine.
//!
//! Two properties the redesign promises:
//!
//! 1. **Thread-count independence** — the pipeline's output is a function of
//!    the seed alone. Every per-block probe sequence derives its identity
//!    from the block address, never from which worker or shard ran it, so
//!    `threads(1)` and `threads(8)` must produce byte-identical results.
//! 2. **Engine safety under contention** — many workers hammering one
//!    [`netsim::SharedNetwork`] observe exactly the replies a sequential
//!    prober would, and the engine's probe accounting stays exact.

use netsim::build::{build, ScenarioConfig};
use netsim::{Block24, SharedNetwork};
use probe::{ProbeReply, Prober};

/// `threads(1)` and `threads(8)` runs of the same seed must agree on every
/// byte of output: selection, measurements, probe totals, aggregates.
#[test]
fn pipeline_is_byte_identical_across_thread_counts() {
    let single = experiments::Pipeline::builder()
        .seed(7)
        .scale(0.01)
        .threads(1)
        .run();
    let eight = experiments::Pipeline::builder()
        .seed(7)
        .scale(0.01)
        .threads(8)
        .run();

    assert_eq!(single.selected.len(), eight.selected.len());
    // Byte-identical: the full Debug rendering of every measurement —
    // classification, last-hop set, probe counts, per-destination detail —
    // must match, not just the headline labels.
    assert_eq!(
        format!("{:?}", single.measurements),
        format!("{:?}", eight.measurements),
        "measurements differ between threads=1 and threads=8"
    );
    assert_eq!(single.classify_probes, eight.classify_probes);
    assert_eq!(single.calibration_probes, eight.calibration_probes);
    assert_eq!(
        format!("{:?}", single.classification_counts()),
        format!("{:?}", eight.classification_counts())
    );
    assert_eq!(
        format!("{:?}", single.aggregates()),
        format!("{:?}", eight.aggregates())
    );

    // Worker accounting partitions the same work either way.
    let blocks: usize = eight.worker_stats.iter().map(|w| w.blocks).sum();
    assert_eq!(blocks, eight.selected.len());
    let probes: u64 = eight.worker_stats.iter().map(|w| w.probes).sum();
    assert_eq!(probes, eight.classify_probes);
}

/// Thread-count independence must also hold with fault injection on: loss
/// draws hash the probe nonce (never wall-clock or arrival order) and rate
/// limiting buckets per probe stream, so which worker classifies a block
/// cannot change what that block observes.
#[test]
fn faulted_pipeline_is_byte_identical_across_thread_counts() {
    let run = |threads| {
        experiments::Pipeline::builder()
            .seed(7)
            .scale(0.01)
            .threads(threads)
            .faults(0.02, 0.5)
            .run()
    };
    let single = run(1);
    let eight = run(8);

    assert_eq!(
        format!("{:?}", single.measurements),
        format!("{:?}", eight.measurements),
        "faulted measurements differ between threads=1 and threads=8"
    );
    assert_eq!(single.classify_probes, eight.classify_probes);
    // Fault accounting is deterministic too: the workers collectively see
    // the same drops/retries/backoff, and the network the same drop mix.
    assert_eq!(single.total_drops(), eight.total_drops());
    assert_eq!(single.total_retries(), eight.total_retries());
    assert_eq!(single.total_backoff_us(), eight.total_backoff_us());
    assert_eq!(single.net_stats, eight.net_stats);
    assert!(single.net_stats.link_drops > 0, "faults were live");
}

/// Eight threads hammer one shared engine. Each must see exactly the replies
/// a sequential prober sees on a pristine copy of the same network, and the
/// engine's carried-probe counter must equal the sum of all senders.
#[test]
fn shared_engine_is_consistent_under_contention() {
    const THREADS: usize = 8;

    let scenario = build(ScenarioConfig::small(99));
    // Targets: a spread of addresses across the allocated space, responsive
    // and unresponsive alike (timeouts exercise the retry path).
    let dsts: Vec<_> = scenario
        .truth
        .blocks
        .keys()
        .take(12)
        .flat_map(|b: &Block24| (1..=5u8).map(|h| b.addr(h)))
        .collect();

    // Sequential baseline on a pristine clone.
    let mut baseline_net = scenario.network.clone();
    let mut baseline = Prober::new(&mut baseline_net, 0x7000);
    let expected: Vec<ProbeReply> = dsts
        .iter()
        .map(|&dst| baseline.probe(dst, 64, 0).reply)
        .collect();
    let probes_per_run = baseline.probes_sent();
    drop(baseline);
    assert_eq!(baseline_net.probes_carried(), probes_per_run);

    // Concurrent: every thread probes the full target list through its own
    // prober over a clone of the one shared handle.
    let shared = SharedNetwork::new(scenario.network);
    let sent: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let net = shared.clone();
                let dsts = &dsts;
                let expected = &expected;
                s.spawn(move || {
                    let mut prober = Prober::shared(net, 0x7100 + t as u16);
                    for (&dst, want) in dsts.iter().zip(expected) {
                        let got = prober.probe(dst, 64, 0).reply;
                        assert_eq!(
                            &got, want,
                            "thread {t} saw a different reply for {dst} than \
                             the sequential baseline"
                        );
                    }
                    prober.probes_sent()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });

    assert_eq!(sent, probes_per_run * THREADS as u64);
    let net = shared
        .try_unwrap()
        .expect("all worker handles were dropped");
    assert_eq!(
        net.probes_carried(),
        sent,
        "engine accounting lost or double-counted probes under contention"
    );
}
