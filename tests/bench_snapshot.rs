//! The committed benchmark snapshots are data the repo makes claims
//! with: `BENCH_baseline.json` / `BENCH_flat.json` record the measured
//! gain of the flat kernel redesign, and CI's bench-gate compares fresh
//! runs against them. These tests keep the committed files parseable,
//! schema-valid, and actually showing the speedup the redesign claims.

use bench::{compare, BenchSnapshot, SNAPSHOT_SCHEMA};

const BASELINE: &str = include_str!("../BENCH_baseline.json");
const FLAT: &str = include_str!("../BENCH_flat.json");

fn load(src: &str, label: &str) -> BenchSnapshot {
    let snap = BenchSnapshot::from_json(src).expect("committed snapshot parses");
    assert_eq!(snap.schema, SNAPSHOT_SCHEMA);
    assert_eq!(snap.label, label);
    snap
}

#[test]
fn committed_snapshots_parse_and_round_trip() {
    for (src, label) in [(BASELINE, "baseline"), (FLAT, "flat")] {
        let snap = load(src, label);
        let again = BenchSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, again);
        assert!(!snap.entries.is_empty());
    }
}

#[test]
fn committed_snapshots_cover_the_same_workloads() {
    let (base, flat) = (load(BASELINE, "baseline"), load(FLAT, "flat"));
    assert_eq!(base.seed, flat.seed, "labels must share seeded workloads");
    let names = |s: &BenchSnapshot| s.entries.iter().map(|e| e.name.clone()).collect::<Vec<_>>();
    assert_eq!(names(&base), names(&flat));
}

/// The redesign's headline claim: ≥2x blocks/sec on the classify and
/// aggregate micro-benches at the 100k-/24 scale. (MCL entries track the
/// same code under both labels and are deliberately not compared here.)
#[test]
fn flat_is_at_least_twice_baseline_at_100k() {
    let (base, flat) = (load(BASELINE, "baseline"), load(FLAT, "flat"));
    for name in [
        "classify.group_verdicts.blocks_per_sec@100000",
        "aggregate.identical.blocks_per_sec@100000",
        "aggregate.similarity.blocks_per_sec@100000",
    ] {
        let b = base
            .get(name)
            .unwrap_or_else(|| panic!("baseline lacks {name}"));
        let f = flat
            .get(name)
            .unwrap_or_else(|| panic!("flat lacks {name}"));
        assert!(b.value > 0.0 && b.higher_is_better);
        assert!(
            f.value >= 2.0 * b.value,
            "{name}: flat {} < 2x baseline {}",
            f.value,
            b.value
        );
    }
}

/// The MDA-Lite claim: at the 100k workload the lite discipline spends at
/// most half the probes per block classic MDA does. The entries are
/// deterministic probe counts (not timings), identical under both labels
/// (the probing discipline is orthogonal to the kernel set), so the bound
/// is exact — no noise margin needed beyond the 2x headroom itself.
#[test]
fn mda_lite_halves_probes_per_block_at_100k() {
    for (src, label) in [(BASELINE, "baseline"), (FLAT, "flat")] {
        let snap = load(src, label);
        let classic = snap
            .get("probe.classify.probes_per_block.classic@100000")
            .unwrap_or_else(|| panic!("{label} lacks the classic probe-budget entry"));
        let lite = snap
            .get("probe.classify.probes_per_block.mda_lite@100000")
            .unwrap_or_else(|| panic!("{label} lacks the mda_lite probe-budget entry"));
        assert!(classic.value > 0.0 && !classic.higher_is_better);
        assert!(
            lite.value * 2.0 <= classic.value,
            "{label}: lite {} probes/block is not ≤ half of classic {}",
            lite.value,
            classic.value
        );
    }
}

/// A snapshot gates cleanly against itself — the shape CI's bench-gate
/// relies on (and a regression in the committed file's own consistency
/// would fail here before it flaked in CI).
#[test]
fn flat_snapshot_gates_against_itself() {
    let flat = load(FLAT, "flat");
    let report = compare(&flat, &flat, 0.10).expect("self-comparison is computable");
    assert!(
        report.pass(),
        "self-comparison regressed: {:?}",
        report.regressions
    );
    assert_eq!(report.compared.len(), flat.entries.len());
}
