//! Offline stand-in for `proptest`.
//!
//! Provides deterministic randomized testing with the `proptest!` macro,
//! `any::<T>()`, range strategies, tuple strategies, `prop_map`, and the
//! `collection::{vec, btree_set}` combinators — the subset this workspace
//! uses. No shrinking: a failing case panics with the generated inputs
//! visible in the assertion message. Each test function derives its RNG
//! seed from its own name, so runs are reproducible.

use std::ops::{Range, RangeInclusive};

/// Default number of cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// Number of cases each `proptest!` test runs: the `PROPTEST_CASES`
/// environment variable when set to a positive integer (CI cranks this
/// up), otherwise [`CASES`]. Read once per process.
pub fn cases() -> usize {
    static RESOLVED: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *RESOLVED.get_or_init(|| {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(CASES)
    })
}

/// Deterministic generator handed to strategies (SplitMix64 core).
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Seed from raw state.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed ^ 0x9E3779B97F4A7C15,
        }
    }

    /// Seed from a test name (stable across runs).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Gen::new(h)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Gen::below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, g: &mut Gen) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> FilterStrategy<Self, F>
    where
        Self: Sized,
    {
        FilterStrategy {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        (**self).generate(g)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        (**self).generate(g)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, g: &mut Gen) -> U {
        (self.f)(self.inner.generate(g))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct FilterStrategy<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for FilterStrategy<S, F> {
    type Value = S::Value;
    fn generate(&self, g: &mut Gen) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(g);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _g: &mut Gen) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(g: &mut Gen) -> Self {
        // Finite, well-spread values (not bit-pattern soup).
        (g.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for [`Arbitrary`] types; build with [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> T {
        T::arbitrary(g)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                self.start.wrapping_add((g.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((g.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (g.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let unit = (g.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Gen, Strategy};

    /// Size argument for collection strategies.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, g: &mut Gen) -> usize {
            self.lo + g.below(self.hi - self.lo)
        }
    }

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of values from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, g: &mut Gen) -> Vec<S::Value> {
            let n = self.size.pick(g);
            (0..n).map(|_| self.element.generate(g)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with target sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` of values from `element`; may come up short if the
    /// element domain is too small to reach the target size.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, g: &mut Gen) -> Self::Value {
            let target = self.size.pick(g);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 100 {
                set.insert(self.element.generate(g));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a proptest file usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Gen, Just, Strategy};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`]`()` deterministic cases
/// ([`CASES`] by default; override with `PROPTEST_CASES`).
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __gen = $crate::Gen::from_name(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __gen);)*
                    $body
                }
            }
        )*
    };
}

/// Assert within a property (panics with context; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u8)> {
        (any::<u32>(), 0u8..=32).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 0u8..=32) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 32);
        }

        #[test]
        fn collections_respect_sizes(
            v in collection::vec(any::<u32>(), 1..40),
            s in collection::btree_set(0u32..1000, 1..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(!s.is_empty() && s.len() < 10);
        }

        #[test]
        fn mapped_strategy_applies(p in arb_pair()) {
            prop_assert!(p.1 <= 32);
        }
    }

    #[test]
    fn cases_env_override_or_default() {
        let n = super::cases();
        match std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            Some(want) => assert_eq!(n, want),
            None => assert_eq!(n, super::CASES),
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = Gen::from_name("x");
        let mut b = Gen::from_name("x");
        let mut c = Gen::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
