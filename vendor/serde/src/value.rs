//! The JSON-like value tree that serialization flows through.

use std::collections::BTreeMap;

/// Object map type (sorted for deterministic output).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative (or explicitly signed) integer.
    I64(i64),
    /// Floating-point.
    F64(f64),
}

impl Number {
    /// As `f64`, if representable (always, in this model).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::U64(u) => u as f64,
            Number::I64(i) => i as f64,
            Number::F64(f) => f,
        })
    }

    /// As `u64`, if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(u) => Some(u),
            Number::I64(i) => u64::try_from(i).ok(),
            Number::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// As `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U64(u) => i64::try_from(u).ok(),
            Number::I64(i) => Some(i),
            Number::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F64(_) => None,
        }
    }

    /// Whether this is a floating-point number.
    pub fn is_f64(&self) -> bool {
        matches!(self, Number::F64(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl std::fmt::Display for Number {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Number::U64(u) => write!(f, "{u}"),
            Number::I64(i) => write!(f, "{i}"),
            // `{:?}` keeps a trailing `.0` on integral floats, so floatness
            // survives a render/parse round trip.
            Number::F64(x) => {
                if x.is_finite() {
                    write!(f, "{x:?}")
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON-like value.
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Value>),
    /// A key-sorted object.
    Object(Map),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `f64` if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As `u64` if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64` if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `bool` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow the map if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// `value["key"]` — returns `Value::Null` for non-objects/missing keys,
/// like `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` — returns `Value::Null` out of bounds, like `serde_json`.
impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Escape and quote a string as a JSON string literal into `out`.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&inner_pad);
                write_json_string(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

impl Value {
    /// Compact JSON rendering (what `serde_json::to_string` produces).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_compact(&mut out, self);
        out
    }

    /// Two-space-indented JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(&mut out, self, 0);
        out
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// Total order over values, used only to make hash-set serialization
/// deterministic (null < bool < number < string < array < object).
pub(crate) fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Number(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }
    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Number(x), Value::Number(y)) => x
            .as_f64()
            .partial_cmp(&y.as_f64())
            .unwrap_or(Ordering::Equal),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xa, ya) in x.iter().zip(y.iter()) {
                let o = value_cmp(xa, ya);
                if o != Ordering::Equal {
                    return o;
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)).then_with(|| {
            // Distinct-rank or object comparison: fall back to rendered text.
            a.to_json().cmp(&b.to_json())
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_display_keeps_floatness() {
        assert_eq!(Number::U64(3).to_string(), "3");
        assert_eq!(Number::F64(3.0).to_string(), "3.0");
        assert_eq!(Number::F64(0.5).to_string(), "0.5");
        assert_eq!(Number::I64(-2).to_string(), "-2");
    }

    #[test]
    fn display_is_compact_json() {
        let mut m = Map::new();
        m.insert(
            "a".into(),
            Value::Array(vec![Value::Null, Value::Bool(true)]),
        );
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"a":[null,true]}"#);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"].is_null());
        assert!(Value::Null[3].is_null());
    }

    #[test]
    fn string_escaping() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }
}
