//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based `Serializer`/`Deserializer` machinery,
//! this stand-in serializes through a concrete JSON-like [`Value`] tree:
//!
//! * [`Serialize`] — `fn to_value(&self) -> Value`
//! * [`Deserialize`] — `fn from_value(&Value) -> Result<Self, Error>`
//!
//! The companion `serde_derive` proc-macro derives both traits for the
//! struct/enum shapes used in this workspace (named structs, newtype and
//! tuple structs, and externally-tagged enums with unit/tuple/struct
//! variants, plus `#[serde(with = "module")]` field overrides), and
//! `serde_json` renders/parses `Value` as JSON text.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Map, Number, Value};

/// Serialization error (also used by `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for Number {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sort the rendered elements so output is deterministic regardless
        // of hash order.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(crate::value::value_cmp);
        Value::Array(items)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
            self.3.to_value(),
        ])
    }
}

/// Render a map key `Value` as an object-key string (JSON object keys are
/// strings; numeric and string keys round-trip, like `serde_json`).
fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => other.to_string(),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(&k.to_value()), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(key_to_string(&k.to_value()), v.to_value());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

fn expected(what: &str, got: &Value) -> Error {
    Error::custom(format!("expected {what}, got {got}"))
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n
                        .as_u64()
                        .ok_or_else(|| expected("unsigned integer", v))?,
                    _ => return Err(expected("unsigned integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => {
                        n.as_i64().ok_or_else(|| expected("integer", v))?
                    }
                    _ => return Err(expected("integer", v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n.as_f64().ok_or_else(|| expected("number", v)),
            _ => Err(expected("number", v)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(expected("bool", v)),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(expected("string", v)),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(expected("null", v)),
        }
    }
}

/// `&'static str` deserializes by leaking the parsed string. This mirrors
/// how the workspace uses it: roster/whois constants deserialized rarely
/// (tests only), where a small intentional leak is acceptable.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        String::from_value(v).map(|s| &*Box::leak(s.into_boxed_str()))
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

fn as_array(v: &Value) -> Result<&[Value], Error> {
    match v {
        Value::Array(items) => Ok(items),
        _ => Err(expected("array", v)),
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        as_array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        as_array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        as_array(v)?.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize + Eq + std::hash::Hash, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashSet<T, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        as_array(v)?.iter().map(T::from_value).collect()
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = as_array(v)?;
        if items.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = as_array(v)?;
        if items.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_value(&items[0])?,
            B::from_value(&items[1])?,
            C::from_value(&items[2])?,
        ))
    }
}

/// Reverse of [`key_to_string`]: candidate `Value`s a key string may have
/// come from, tried in order.
fn key_candidates(s: &str) -> Vec<Value> {
    let mut c = vec![Value::String(s.to_string())];
    if let Ok(u) = s.parse::<u64>() {
        c.push(Value::Number(Number::U64(u)));
    } else if let Ok(i) = s.parse::<i64>() {
        c.push(Value::Number(Number::I64(i)));
    } else if let Ok(f) = s.parse::<f64>() {
        c.push(Value::Number(Number::F64(f)));
    }
    if let Ok(b) = s.parse::<bool>() {
        c.push(Value::Bool(b));
    }
    c
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    let mut last = Error::custom("uninhabited key");
    for cand in key_candidates(s) {
        match K::from_value(&cand) {
            Ok(k) => return Ok(k),
            Err(e) => last = e,
        }
    }
    Err(Error::custom(format!("cannot parse map key {s:?}: {last}")))
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(expected("object", v)),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(expected("object", v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{BTreeMap, HashMap, VecDeque};

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&0.5f64.to_value()).unwrap(), 0.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn numeric_map_keys_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(42u32, vec![1u8, 2]);
        let v = m.to_value();
        let back: BTreeMap<u32, Vec<u8>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_map_keys_roundtrip() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1usize);
        m.insert("7".to_string(), 2usize); // numeric-looking string key stays a string
        let back: HashMap<String, usize> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn containers_roundtrip() {
        let dq: VecDeque<(u8, u16)> = vec![(1, 2), (3, 4)].into();
        let back: VecDeque<(u8, u16)> = Deserialize::from_value(&dq.to_value()).unwrap();
        assert_eq!(back, dq);
    }

    #[test]
    fn integer_out_of_range_is_error() {
        assert!(u8::from_value(&300u32.to_value()).is_err());
    }
}
