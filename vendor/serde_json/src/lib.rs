//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! `serde` crate's [`Value`] tree as JSON text.

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

use serde::{Deserialize, Serialize};

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a deserializable type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Two-space-indented JSON text for any serializable value.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Parse JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::from_value(&value)
}

/// Build a [`Value`] literal.
///
/// Supports `null`, scalars/expressions, flat arrays, and objects with
/// string-literal keys and expression values — the shapes this workspace
/// uses. Object/array values may be any `Serialize` expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $item:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$item).unwrap() ),* ])
    };
    ({ $( $key:literal : $val:expr ),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key.to_string(), $crate::to_value(&$val).unwrap()); )*
        $crate::Value::Object(__m)
    }};
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

mod parse {
    use super::{Error, Map, Number, Value};

    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Result<u8, Error> {
            let b = self
                .peek()
                .ok_or_else(|| Error::custom("unexpected end of JSON"))?;
            self.pos += 1;
            Ok(b)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            let got = self.bump()?;
            if got != b {
                return Err(Error::custom(format!(
                    "expected {:?} at byte {}, got {:?}",
                    b as char,
                    self.pos - 1,
                    got as char
                )));
            }
            Ok(())
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
            for &b in word.as_bytes() {
                self.expect(b)?;
            }
            Ok(v)
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self
                .peek()
                .ok_or_else(|| Error::custom("unexpected end of JSON"))?
            {
                b'n' => self.literal("null", Value::Null),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'"' => self.string().map(Value::String),
                b'[' => self.array(),
                b'{' => self.object(),
                b'-' | b'0'..=b'9' => self.number(),
                other => Err(Error::custom(format!(
                    "unexpected character {:?} at byte {}",
                    other as char, self.pos
                ))),
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.bump()? {
                    b',' => continue,
                    b']' => return Ok(Value::Array(items)),
                    other => {
                        return Err(Error::custom(format!(
                            "expected ',' or ']', got {:?}",
                            other as char
                        )))
                    }
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut m = Map::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(m));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                m.insert(key, val);
                self.skip_ws();
                match self.bump()? {
                    b',' => continue,
                    b'}' => return Ok(Value::Object(m)),
                    other => {
                        return Err(Error::custom(format!(
                            "expected ',' or '}}', got {:?}",
                            other as char
                        )))
                    }
                }
            }
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                let start = self.pos;
                // Fast path: run of plain bytes.
                while let Some(b) = self.peek() {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    self.pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
                );
                match self.bump()? {
                    b'"' => return Ok(out),
                    b'\\' => match self.bump()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let d = self.bump()?;
                                code = code * 16
                                    + (d as char)
                                        .to_digit(16)
                                        .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            }
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!("bad escape \\{}", other as char)))
                        }
                    },
                    _ => unreachable!("loop exits only on quote or backslash"),
                }
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let mut is_float = false;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => self.pos += 1,
                    b'.' | b'e' | b'E' | b'+' | b'-' => {
                        is_float = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::custom("invalid number"))?;
            let n = if is_float {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number {text:?}")))?,
                )
            } else if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| Error::custom(format!("invalid number {text:?}")))?,
                )
            };
            Ok(Value::Number(n))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,2.5,-3],"b":"x\ny","c":null,"d":true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"].as_str(), Some("x\ny"));
        assert!(v["c"].is_null());
        assert_eq!(v["d"].as_bool(), Some(true));
        let rendered = to_string(&v).unwrap();
        let again: Value = from_str(&rendered).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn json_macro_shapes() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(3).as_i64(), Some(3));
        assert_eq!(json!("s").as_str(), Some("s"));
        let obj = json!({"metric": "x", "n": 4usize});
        assert_eq!(obj["metric"].as_str(), Some("x"));
        assert_eq!(obj["n"].as_u64(), Some(4));
        let arr = json!([1, 2, 3]);
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }

    #[test]
    fn typed_roundtrip_via_text() {
        let data: Vec<(u32, String)> = vec![(1, "a".into()), (2, "b".into())];
        let text = to_string(&data).unwrap();
        let back: Vec<(u32, String)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_is_parseable() {
        let v = json!({"a": vec![1, 2], "b": 0.5});
        let back: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_integral_keeps_floatness() {
        let v = to_value(3.0f64).unwrap();
        let text = to_string(&v).unwrap();
        assert_eq!(text, "3.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 3.0);
    }
}
