//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API so
//! the workspace builds without network access to crates.io. Lock poisoning
//! is recovered transparently (a panicking holder does not wedge the lock),
//! which matches `parking_lot` semantics closely enough for this codebase.

use std::sync::{self, TryLockError};

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write lock, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
