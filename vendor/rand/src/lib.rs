//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides the traits the workspace uses — [`RngCore`], [`Rng`],
//! [`SeedableRng`], [`seq::SliceRandom`] — with deterministic, seedable
//! behaviour. `seed_from_u64` expands the seed with the same PCG32-based
//! routine as `rand_core` 0.6, so seeds fan out to well-mixed key material.
//! Distribution sampling is uniform and deterministic but does not
//! reproduce the exact bit streams of the real crate; every consumer in
//! this workspace is self-consistent (expectations are derived from the
//! same PRNG that generates the data).

/// Low-level uniform bit generation.
pub trait RngCore {
    /// The next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A PRNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with PCG32 exactly as
    /// `rand_core` 0.6 does.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable from uniform bits via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1), as rand 0.8's Standard does.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with a uniform range sampler, for `Rng::gen_range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_range(rng, lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        lo + f32::sample(rng) * (hi - lo)
    }
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_range(rng, lo, hi)
    }
}

/// Range arguments accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        if p >= 1.0 {
            return true;
        }
        // Scaled-integer comparison, as rand 0.8's Bernoulli.
        let p_int = (p * (1u128 << 64) as f64) as u64;
        self.next_u64() < p_int
    }

    /// Uniform draw from a range.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::RngCore;

    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (rng.next_u64() % n as u64) as usize
    }

    /// Random helpers on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = uniform_below(rng, self.len());
                Some(&self[i])
            }
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: u32 = r.gen_range(48..=384);
            assert!((48..=384).contains(&w));
            let f = r.gen_range(0.3..0.9);
            assert!((0.3..0.9).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = Lcg(1);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Lcg(2);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..4000).filter(|_| r.gen_bool(0.5)).count();
        assert!((1500..2500).contains(&hits), "p=0.5 wildly off: {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Lcg(3);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
