//! Offline stand-in for `criterion`.
//!
//! Implements the harness API the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!` — with simple
//! wall-clock timing: each benchmark runs a short warm-up, then a fixed
//! number of timed iterations, and prints min/mean per-iteration time.
//! There is no statistical analysis, HTML report, or baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; drives timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
    min: Duration,
}

impl Bencher {
    /// Time `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            self.elapsed += dt;
            if dt < self.min {
                self.min = dt;
            }
        }
    }
}

fn run_one(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
        min: Duration::MAX,
    };
    f(&mut b);
    if b.elapsed.is_zero() && b.min == Duration::MAX {
        println!("{label:<50} (no iterations recorded)");
    } else {
        let mean = b.elapsed / (iters as u32);
        println!(
            "{label:<50} mean {mean:>12.3?}   min {:>12.3?}   ({iters} iters)",
            b.min
        );
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), self.iters, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            iters: self.iters,
        }
    }
}

/// A named group of benchmarks (from [`Criterion::benchmark_group`]).
pub struct BenchmarkGroup {
    name: String,
    iters: u64,
}

impl BenchmarkGroup {
    /// Reduce/raise the per-benchmark iteration count (criterion's
    /// `sample_size` analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = n.max(2) as u64;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.into_id()),
            self.iters,
            &mut f,
        );
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.iters, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("mul", |b| b.iter(|| black_box(3u64) * black_box(4)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
