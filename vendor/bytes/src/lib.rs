//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of `Bytes` / `BytesMut` / `Buf` / `BufMut` the
//! workspace uses. `Bytes` is a cheaply clonable, immutable view into a
//! shared buffer (`Arc<[u8]>` + range); `BytesMut` is a growable buffer
//! that freezes into `Bytes`. Network byte order (big-endian) throughout,
//! as in the real crate.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Read access to a byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining between the cursor and the end.
    fn remaining(&self) -> usize;
    /// The remaining bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Read a big-endian `u16` and advance.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32` and advance.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64` and advance.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Copy `dst.len()` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write access to a growable byte buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A cheaply clonable, immutable slice of shared bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static byte slice (copies in this stand-in; semantics match).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view sharing the same underlying storage.
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.inner)
    }

    /// Append raw bytes (inherent mirror of the trait method).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.clone().freeze(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEADBEEF);
        buf.put_slice(&[1, 2]);
        assert_eq!(buf.len(), 9);
        buf[0] = 0xAC; // DerefMut indexing, as wire.rs uses for checksums
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 9);
        assert_eq!(b.get_u8(), 0xAC);
        assert_eq!(b.get_u16(), 0x1234);
        assert_eq!(b.get_u32(), 0xDEADBEEF);
        assert_eq!(&b[..], &[1, 2]);
    }

    #[test]
    fn slice_shares_storage_and_indexes_relative() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0, 1, 2, 3, 4, 5]);
        let b = buf.freeze();
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = b.slice(..3);
        assert_eq!(s2.len(), 3);
        let mut adv = b.clone();
        adv.advance(4);
        assert_eq!(adv[0], 4);
        assert_eq!(b[0], 0, "clone is independent view");
    }
}
