//! Offline stand-in for `serde_derive`.
//!
//! Derives the Value-tree `serde::Serialize` / `serde::Deserialize` traits
//! (see the vendored `serde` crate) without `syn`/`quote`: the input token
//! stream is parsed by hand. Supported shapes — exactly what this
//! workspace uses:
//!
//! * named structs (with optional `#[serde(with = "module")]`,
//!   `#[serde(default)]`, and `#[serde(skip_serializing_if = "path")]`
//!   per field)
//! * tuple structs (newtype and general)
//! * unit structs
//! * externally-tagged enums with unit, tuple, and struct variants
//!
//! Generics are not supported and produce a compile error naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    with: Option<String>,
    /// `#[serde(default)]`: a missing key deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
    /// `#[serde(skip_serializing_if = "path")]`: the key is omitted from
    /// the serialized object when `path(&self.field)` is true. Pair it
    /// with `default` so the omitted key round-trips.
    skip_if: Option<String>,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes, visibility, and doc comments until the
    // `struct` / `enum` keyword.
    let mut keyword = None;
    while let Some(tt) = iter.next() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    keyword = Some(s);
                    break;
                }
                // `pub` or other modifiers: skip (and any `(crate)` group).
            }
            _ => {}
        }
    }
    let keyword = keyword.expect("derive input must be a struct or enum");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after `{keyword}`, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive stand-in: generic type `{name}` is not supported");
        }
    }
    let shape = if keyword == "enum" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("expected struct body for `{name}`, got {other:?}"),
        }
    };
    Input { name, shape }
}

/// Field-level `#[serde(...)]` options this stand-in understands.
#[derive(Debug, Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
    skip_if: Option<String>,
}

/// Extract the supported options (`with = "module"`, `default`,
/// `skip_serializing_if = "path"`) from a `#[serde(...)]` attribute
/// group's inner stream, if present.
fn serde_field_attrs(attr_group: TokenStream) -> Option<FieldAttrs> {
    let mut iter = attr_group.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let mut attrs = FieldAttrs::default();
    let toks: Vec<TokenTree> = inner.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        if let TokenTree::Ident(id) = &toks[i] {
            match id.to_string().as_str() {
                "with" => {
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (toks.get(i + 1), toks.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            let s = lit.to_string();
                            attrs.with = Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                "default" => attrs.default = true,
                "skip_serializing_if" => {
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (toks.get(i + 1), toks.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            let s = lit.to_string();
                            attrs.skip_if = Some(s.trim_matches('"').to_string());
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    Some(attrs)
}

/// Parse `name: Type, ...` fields from a brace group's stream, skipping
/// attributes (capturing `#[serde(with = ...)]`) and visibility. Commas
/// inside angle brackets (generic types) do not split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Per-field: attributes and visibility first.
        let mut with = None;
        let mut default = false;
        let mut skip_if = None;
        let name = loop {
            match iter.next() {
                None => return fields,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        if let Some(attrs) = serde_field_attrs(g.stream()) {
                            if attrs.with.is_some() {
                                with = attrs.with;
                            }
                            if attrs.skip_if.is_some() {
                                skip_if = attrs.skip_if;
                            }
                            default |= attrs.default;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    // Skip optional `(crate)` / `(super)` restriction.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in field position: {other}"),
            }
        };
        // Expect `:`, then consume the type until a top-level comma.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field {
            name,
            with,
            default,
            skip_if,
        });
    }
}

/// Count the fields of a tuple struct/variant (top-level commas + 1).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in stream {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes/doc comments before the variant name.
        let name = loop {
            match iter.next() {
                None => return variants,
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next(); // attribute group
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => panic!("unexpected token in variant position: {other}"),
            }
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        // Consume up to and including the separating comma (skips any
        // explicit discriminant, which this workspace does not use).
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push(Variant { name, kind });
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_field_expr(f: &Field, access: &str) -> String {
    match &f.with {
        Some(path) => format!("{path}::serialize({access})"),
        None => format!("::serde::Serialize::to_value({access})"),
    }
}

fn de_field_expr(f: &Field, value_expr: &str) -> String {
    match &f.with {
        Some(path) => format!("{path}::deserialize({value_expr})?"),
        None => format!("::serde::Deserialize::from_value({value_expr})?"),
    }
}

fn missing(name: &str, field: &str) -> String {
    format!(".ok_or_else(|| ::serde::Error::custom(\"missing field `{field}` in {name}\"))?")
}

/// The `field: <expr>` initializer for one named field of `owner`,
/// looked up in the object expression `obj`. A `#[serde(default)]` field
/// falls back to `Default::default()` when the key is absent (old
/// documents written before the field existed stay readable).
fn de_named_init(f: &Field, obj: &str, owner: &str) -> String {
    if f.default {
        format!(
            "{}: match {obj}.get(\"{}\") {{ Some(__fv) => {}, \
             None => ::std::default::Default::default() }}",
            f.name,
            f.name,
            de_field_expr(f, "__fv")
        )
    } else {
        let getter = format!("{obj}.get(\"{}\"){}", f.name, missing(owner, &f.name));
        format!("{}: {}", f.name, de_field_expr(f, &getter))
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut s = String::from("let mut __m = ::std::collections::BTreeMap::new();\n");
            for f in fields {
                let expr = ser_field_expr(f, &format!("&self.{}", f.name));
                let insert = format!("__m.insert(\"{}\".to_string(), {});\n", f.name, expr);
                match &f.skip_if {
                    Some(pred) => {
                        s.push_str(&format!("if !{pred}(&self.{}) {{ {insert} }}\n", f.name))
                    }
                    None => s.push_str(&insert),
                }
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => {{\n\
                         let mut __m = ::std::collections::BTreeMap::new();\n\
                         __m.insert(\"{vname}\".to_string(), ::serde::Serialize::to_value(__f0));\n\
                         ::serde::Value::Object(__m)\n}}\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __inner = ::std::collections::BTreeMap::new();\n",
                        );
                        for f in fields {
                            let expr = ser_field_expr(f, &f.name);
                            inner.push_str(&format!(
                                "__inner.insert(\"{}\".to_string(), {});\n",
                                f.name, expr
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {{\n{inner}\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(\"{vname}\".to_string(), ::serde::Value::Object(__inner));\n\
                             ::serde::Value::Object(__m)\n}}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Named(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n"
            );
            let inits: Vec<String> = fields
                .iter()
                .map(|f| de_named_init(f, "__obj", name))
                .collect();
            s.push_str(&format!("Ok({name} {{ {} }})", inits.join(", ")));
            s
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        Shape::Tuple(n) => {
            let mut s = format!(
                "let __items = match __v {{ ::serde::Value::Array(a) => a, _ => \
                 return Err(::serde::Error::custom(\"expected array for {name}\")) }};\n\
                 if __items.len() != {n} {{ return Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\")); }}\n"
            );
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            s.push_str(&format!("Ok({name}({}))", inits.join(", ")));
            s
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"))
                    }
                    VariantKind::Tuple(1) => payload_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         ::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __items = match __val {{ ::serde::Value::Array(a) => a, _ => \
                             return Err(::serde::Error::custom(\"expected array for {name}::{vname}\")) }};\n\
                             if __items.len() != {n} {{ return Err(::serde::Error::custom(\
                             \"wrong arity for {name}::{vname}\")); }}\n\
                             Ok({name}::{vname}({}))\n}}\n",
                            inits.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| de_named_init(f, "__inner", &format!("{name}::{vname}")))
                            .collect();
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let __inner = __val.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vname}\"))?;\n\
                             Ok({name}::{vname} {{ {} }})\n}}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n}},\n\
                 ::serde::Value::Object(__m) => {{\n\
                 let (__tag, __val) = __m.iter().next().ok_or_else(|| \
                 ::serde::Error::custom(\"empty object for enum {name}\"))?;\n\
                 match __tag.as_str() {{\n{payload_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {name} variant {{__other:?}}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::custom(\"expected string or object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
