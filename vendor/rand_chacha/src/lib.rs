//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 keystream PRNG.
//!
//! Implements the actual ChaCha block function (djb variant: 64-bit block
//! counter in words 12–13, 64-bit stream id in words 14–15, here fixed to
//! stream 0) with 8 rounds, emitting the keystream as little-endian `u32`
//! words. Combined with `rand`'s PCG32 `seed_from_u64` expansion this gives
//! high-quality, deterministic, seedable randomness of the same family as
//! the real crate.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// The ChaCha PRNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; BLOCK_WORDS] = [
            0x61707865,
            0x3320646e,
            0x79622d32,
            0x6b206574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds + four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial.iter()) {
            *out = out.wrapping_add(*init);
        }
        self.buf = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS, // force refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        // Crude sanity: mean of u8 draws near 127.5, all byte values hit.
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut seen = [false; 256];
        let mut sum = 0u64;
        let n = 64 * 1024;
        for _ in 0..n {
            let b = (r.next_u32() & 0xff) as u8;
            seen[b as usize] = true;
            sum += b as u64;
        }
        assert!(seen.iter().all(|&s| s));
        let mean = sum as f64 / n as f64;
        assert!((120.0..135.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
