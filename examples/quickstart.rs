//! Quickstart: build a simulated internet, take a ZMap snapshot, and run
//! Hobbit over a handful of /24 blocks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Two ways in, shown below:
//!
//! 1. the one-liner [`experiments::Pipeline::builder()`], which runs the
//!    paper's whole measurement sequence (scan → selection → calibration →
//!    concurrent classification), and
//! 2. the manual walkthrough over a [`netsim::SharedNetwork`] handle, the
//!    same thread-safe engine the pipeline's workers probe concurrently.

use hobbit::{classify_block, select_block, ConfidenceTable, HobbitConfig};
use netsim::build::{build, ScenarioConfig};
use netsim::SharedNetwork;
use probe::{zmap, Prober};

fn main() {
    // ── Route 1: the fluent pipeline builder ────────────────────────────
    let p = experiments::Pipeline::builder().seed(42).scale(0.01).run();
    println!(
        "pipeline: {} blocks selected, {} classified homogeneous, {} probes",
        p.selected.len(),
        p.homog_blocks().len(),
        p.classify_probes
    );
    for w in &p.worker_stats {
        println!(
            "  worker: {} blocks, {} probes, {} steals",
            w.blocks, w.probes, w.steals
        );
    }

    // ── Route 2: the manual walkthrough ─────────────────────────────────
    // A small deterministic internet: ~2k /24 blocks, full ground truth.
    let mut scenario = build(ScenarioConfig::small(42));
    println!(
        "simulated internet: {} routers, {} allocated /24 blocks",
        scenario.network.router_count(),
        scenario.truth.blocks.len()
    );

    // Step 1: the ZMap-style snapshot of responsive addresses.
    let snapshot = zmap::scan_all(&mut scenario.network);
    println!(
        "zmap snapshot: {} active addresses in {} blocks ({} probes)",
        snapshot.total_active(),
        snapshot.active.len(),
        snapshot.probes
    );

    // Step 2: classify the first blocks that pass the selection criteria.
    // The prober talks to the network through a shared handle — hand out
    // clones of `net` to as many threads as you like.
    let net = SharedNetwork::new(scenario.network);
    let mut prober = Prober::shared(net.clone(), 0x42);
    let table = ConfidenceTable::empty(); // no calibration: probe all actives
    let cfg = HobbitConfig::default();
    let mut shown = 0;
    for block in snapshot.blocks() {
        let Ok(sel) = select_block(&snapshot, block) else {
            continue;
        };
        let m = classify_block(&mut prober, &sel, &table, &cfg);
        let truth = if scenario.truth.is_homogeneous(block) {
            "truly homogeneous"
        } else {
            "truly heterogeneous"
        };
        println!(
            "{block}  ->  {:<28} last-hops={:<2} probed={:<3} probes={:<5} [{truth}]",
            m.classification.label(),
            m.lasthop_set.len(),
            m.dests_probed,
            m.probes_used,
        );
        shown += 1;
        if shown == 15 {
            break;
        }
    }
    println!("total probes sent: {}", prober.probes_sent());
}
