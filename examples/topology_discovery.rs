//! Topology discovery planning with Hobbit blocks (paper Section 7.1).
//!
//! A mapping system like CAIDA's Ark probes one destination per routed /24.
//! Hobbit blocks make that budget go further: destinations chosen per
//! *homogeneous block* discover the same links with fewer probes, freeing
//! budget for the heterogeneous corners of the network.
//!
//! ```text
//! cargo run --release --example topology_discovery
//! ```

use aggregate::{aggregate_identical, HomogBlock};
use analysis::{coverage_curve, TraceDataset};
use hobbit::{classify_block, select_block, survey_block, ConfidenceTable, HobbitConfig};
use netsim::build::{build, ScenarioConfig};
use netsim::Block24;
use probe::{zmap, Prober, StoppingRule};

fn main() {
    let mut scenario = build(ScenarioConfig::small(7));
    let snapshot = zmap::scan_all(&mut scenario.network);

    // Identify homogeneous blocks on a sample and aggregate them.
    let table = ConfidenceTable::empty();
    let cfg = HobbitConfig::default();
    let mut homog: Vec<HomogBlock> = Vec::new();
    {
        let mut prober = Prober::new(&mut scenario.network, 1);
        for block in snapshot.blocks().take(400) {
            let Ok(sel) = select_block(&snapshot, block) else {
                continue;
            };
            let m = classify_block(&mut prober, &sel, &table, &cfg);
            if m.classification.is_homogeneous() && !m.lasthop_set.is_empty() {
                homog.push(HomogBlock::new(m.block, m.lasthop_set));
            }
        }
        println!(
            "classified sample: {} homogeneous /24s ({} probes)",
            homog.len(),
            prober.probes_sent()
        );
    }
    let aggs = aggregate_identical(&homog);
    println!(
        "aggregated into {} Hobbit blocks (largest spans {} /24s)",
        aggs.len(),
        aggs.first().map(|a| a.size()).unwrap_or(0)
    );

    // Survey full traceroutes for the members of the biggest aggregates,
    // then compare destination-selection strategies at equal budget.
    let mut dataset = TraceDataset::default();
    let mut hobbit_groups: Vec<Vec<Block24>> = Vec::new();
    {
        let mut prober = Prober::new(&mut scenario.network, 2);
        for agg in aggs.iter().filter(|a| a.size() >= 1).take(12) {
            let mut group = Vec::new();
            for &block in agg.blocks.iter().take(6) {
                let Ok(sel) = select_block(&snapshot, block) else {
                    continue;
                };
                let s = survey_block(&mut prober, &sel, StoppingRule::confidence95(), true);
                if !s.per_addr_paths.is_empty() {
                    dataset.per_block.insert(block, s.per_addr_paths);
                    group.push(block);
                }
            }
            if !group.is_empty() {
                hobbit_groups.push(group);
            }
        }
    }
    let per_24: Vec<Vec<Block24>> = dataset.per_block.keys().map(|&b| vec![b]).collect();
    println!(
        "trace dataset: {} /24s in {} Hobbit blocks, {} distinct links",
        per_24.len(),
        hobbit_groups.len(),
        dataset.all_links().len()
    );

    println!("\n  strategy          dests/24   link coverage");
    for &k in &[1usize, 2, 4, 8] {
        let base = &coverage_curve(&dataset, &per_24, &[k], 9)[0];
        let agg = &coverage_curve(&dataset, &hobbit_groups, &[k], 9)[0];
        println!(
            "  per-/24 k={k}        {:>5.2}      {:>5.1}%",
            base.avg_per_block24,
            base.ratio * 100.0
        );
        println!(
            "  per-Hobbit k={k}     {:>5.2}      {:>5.1}%",
            agg.avg_per_block24,
            agg.ratio * 100.0
        );
    }
}
