//! Outage monitoring with Hobbit blocks (the Trinocular use case from the
//! paper's introduction).
//!
//! Trinocular tracks outages per /24, which mis-fires when a /24 is not a
//! coherent unit. Hobbit blocks are coherent by construction: their /24s
//! share last-hop routers, so probing a few representatives per *block*
//! tracks availability with far fewer probes. This example watches several
//! epochs of the simulated internet and reports block-level outages.
//!
//! ```text
//! cargo run --release --example outage_monitor
//! ```

use aggregate::{aggregate_identical, HomogBlock};
use hobbit::{classify_block, select_block, ConfidenceTable, HobbitConfig};
use netsim::build::{build, ScenarioConfig};
use netsim::{Addr, Block24};
use probe::{zmap, ProbeReply, Prober};

/// Probes per /24 representative check.
const PROBES_PER_BLOCK: usize = 4;

/// Check whether a /24 answers at all right now.
fn block_alive(prober: &mut Prober<'_>, actives: &[Addr]) -> bool {
    for &dst in actives.iter().take(PROBES_PER_BLOCK) {
        if let ProbeReply::Echo { .. } = prober.probe(dst, 64, 0).reply {
            return true;
        }
    }
    false
}

fn main() {
    let mut scenario = build(ScenarioConfig::small(23));
    let snapshot = zmap::scan_all(&mut scenario.network);

    // Build the monitoring universe: Hobbit blocks over a classified sample.
    let table = ConfidenceTable::empty();
    let cfg = HobbitConfig::default();
    let mut homog = Vec::new();
    {
        let mut prober = Prober::new(&mut scenario.network, 1);
        for block in snapshot.blocks().take(500) {
            let Ok(sel) = select_block(&snapshot, block) else {
                continue;
            };
            let m = classify_block(&mut prober, &sel, &table, &cfg);
            if m.classification.is_homogeneous() && !m.lasthop_set.is_empty() {
                homog.push(HomogBlock::new(m.block, m.lasthop_set));
            }
        }
    }
    let aggs = aggregate_identical(&homog);
    let monitored: Vec<&aggregate::Aggregate> =
        aggs.iter().filter(|a| a.size() >= 2).take(20).collect();
    let total_24s: usize = monitored.iter().map(|a| a.size()).sum();
    println!(
        "monitoring {} Hobbit blocks covering {} /24s",
        monitored.len(),
        total_24s
    );

    // Watch several epochs. Per epoch we probe ONE representative /24 per
    // Hobbit block (plus confirmation on a second member when it looks
    // down) instead of every /24 — the efficiency the paper promises.
    for epoch in 2..6u32 {
        scenario.network.set_epoch(epoch);
        let mut down: Vec<(Block24, usize)> = Vec::new();
        let probes_spent;
        {
            let mut prober = Prober::new(&mut scenario.network, epoch as u16);
            for agg in &monitored {
                let rep = agg.blocks[0];
                let alive = block_alive(&mut prober, snapshot.active_in(rep));
                if !alive {
                    // Confirm on another member before declaring an outage.
                    let confirm = agg.blocks.get(1).copied().unwrap_or(rep);
                    if !block_alive(&mut prober, snapshot.active_in(confirm)) {
                        down.push((rep, agg.size()));
                    }
                }
            }
            probes_spent = prober.probes_sent();
        }
        let naive_cost = total_24s * PROBES_PER_BLOCK;
        println!(
            "epoch {epoch}: {} block outages (cost {} probes vs {} for per-/24 monitoring)",
            down.len(),
            probes_spent,
            naive_cost
        );
        for (rep, size) in down.iter().take(5) {
            println!("    outage: Hobbit block of {size} /24s (representative {rep})");
        }
    }
}
