//! Cellular address census (paper Sections 5.2 and 7.2).
//!
//! Large homogeneous blocks behind few last-hop routers are often cellular
//! carriers aggregating whole countries behind a handful of ingress
//! gateways. This example finds the biggest aggregates, applies the
//! first-ping radio-wake-up test, and extracts reverse-DNS rules that
//! generalize to cellular address identification.
//!
//! ```text
//! cargo run --release --example cellular_census
//! ```

use aggregate::{aggregate_identical, HomogBlock};
use analysis::{block_ping_deltas, dominant_pattern, looks_cellular, pattern_is_exclusive};
use hobbit::{classify_block, select_block, ConfidenceTable, HobbitConfig};
use netsim::build::{build, ScenarioConfig};
use probe::{zmap, Prober};
use registry::Registry;

fn main() {
    let mut cfg = ScenarioConfig::small(11);
    cfg.big_block_scale = 0.05;
    let mut scenario = build(cfg);
    let snapshot = zmap::scan_all(&mut scenario.network);

    // Classify everything and aggregate the homogeneous blocks.
    let table = ConfidenceTable::empty();
    let hcfg = HobbitConfig::default();
    let mut homog = Vec::new();
    {
        let mut prober = Prober::new(&mut scenario.network, 1);
        for block in snapshot.blocks() {
            let Ok(sel) = select_block(&snapshot, block) else {
                continue;
            };
            let m = classify_block(&mut prober, &sel, &table, &hcfg);
            if m.classification.is_homogeneous() && !m.lasthop_set.is_empty() {
                homog.push(HomogBlock::new(m.block, m.lasthop_set));
            }
        }
    }
    let aggs = aggregate_identical(&homog);

    // A fresh campaign: radios have gone idle since classification.
    let epoch = scenario.network.epoch() + 1;
    scenario.network.set_epoch(epoch);

    let registry = Registry::new(&scenario.truth, 11);
    let snapshot2 = snapshot.clone();
    let actives = move |b: netsim::Block24| snapshot2.active_in(b).to_vec();

    println!("top aggregates and their radio signatures:\n");
    println!("  org                    size  cellular?  dominant rDNS pattern");
    for agg in aggs.iter().take(10) {
        let org = registry
            .geo
            .lookup_block(agg.blocks[0])
            .map(|g| g.org.clone())
            .unwrap_or_else(|| "?".into());
        let mut prober = Prober::new(&mut scenario.network, 2);
        let deltas = block_ping_deltas(&mut prober, &agg.blocks, &actives, 8, 5, 12, 11);
        let cellular = looks_cellular(&deltas);

        let sample: Vec<netsim::Addr> = agg
            .blocks
            .iter()
            .take(5)
            .flat_map(|b| snapshot.active_in(*b).iter().take(10).copied())
            .collect();
        let pattern = dominant_pattern(&registry.rdns, &sample);
        let pattern_str = pattern
            .as_ref()
            .map(|(p, f)| format!("{p} ({:.0}% of names)", f * 100.0))
            .unwrap_or_else(|| "none".into());
        println!(
            "  {org:<22} {:>4}  {:<9} {pattern_str}",
            agg.size(),
            if cellular { "yes" } else { "no" },
        );

        // Generalize a detection rule: the pattern must match neither
        // router names nor known non-cellular end hosts (the paper checks
        // against traceroute-discovered routers and Bitcoin nodes).
        if cellular {
            if let Some((p, _)) = pattern {
                let mut negatives: Vec<String> = (1..200u32)
                    .map(|i| registry.rdns.router_name(netsim::Addr(0x0A00_0000 + i)))
                    .collect();
                negatives.extend(registry.rdns.non_cellular_names(400));
                if pattern_is_exclusive(&p, &negatives) {
                    println!("      -> rule: rDNS pattern {p:?} identifies cellular addresses");
                }
            }
        }
    }
}
